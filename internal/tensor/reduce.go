package tensor

import (
	"fmt"
	"math"
)

// reduceAxis applies a fold along the given axis. keepDims keeps the reduced
// dimension at size 1.
func reduceAxis(t *Tensor, axis int, keepDims bool, init float64,
	fold func(acc, v float64) float64) *Tensor {
	r := t.Rank()
	if axis < 0 {
		axis += r
	}
	if axis < 0 || axis >= r {
		panic(fmt.Sprintf("tensor: reduce axis %d out of range for %v", axis, t.shape))
	}
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= t.shape[d]
	}
	for d := axis + 1; d < r; d++ {
		inner *= t.shape[d]
	}
	n := t.shape[axis]
	var shape []int
	for d := 0; d < r; d++ {
		if d == axis {
			if keepDims {
				shape = append(shape, 1)
			}
			continue
		}
		shape = append(shape, t.shape[d])
	}
	out := Full(init, shape...)
	for o := 0; o < outer; o++ {
		base := o * n * inner
		for k := 0; k < n; k++ {
			row := t.data[base+k*inner : base+(k+1)*inner]
			orow := out.data[o*inner : (o+1)*inner]
			for j := range row {
				orow[j] = fold(orow[j], row[j])
			}
		}
	}
	return out
}

// SumAxis sums along axis.
func SumAxis(t *Tensor, axis int, keepDims bool) *Tensor {
	return reduceAxis(t, axis, keepDims, 0, func(a, v float64) float64 { return a + v })
}

// MeanAxis averages along axis.
func MeanAxis(t *Tensor, axis int, keepDims bool) *Tensor {
	if axis < 0 {
		axis += t.Rank()
	}
	s := SumAxis(t, axis, keepDims)
	ScaleInPlace(s, 1/float64(t.shape[axis]))
	return s
}

// MaxAxis takes the max along axis.
func MaxAxis(t *Tensor, axis int, keepDims bool) *Tensor {
	return reduceAxis(t, axis, keepDims, math.Inf(-1), math.Max)
}

// MinAxis takes the min along axis.
func MinAxis(t *Tensor, axis int, keepDims bool) *Tensor {
	return reduceAxis(t, axis, keepDims, math.Inf(1), math.Min)
}

// Sum returns the sum of all elements as a scalar tensor.
func Sum(t *Tensor) *Tensor {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return Scalar(s)
}

// Mean returns the mean of all elements as a scalar tensor.
func Mean(t *Tensor) *Tensor {
	if t.Size() == 0 {
		return Scalar(0)
	}
	return Scalar(Sum(t).Item() / float64(t.Size()))
}

// Max returns the max of all elements.
func Max(t *Tensor) float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		m = math.Max(m, v)
	}
	return m
}

// ArgMaxAxis returns, along axis, the index of the maximum element. Ties go
// to the lowest index. The result drops the reduced axis.
func ArgMaxAxis(t *Tensor, axis int) *Tensor {
	r := t.Rank()
	if axis < 0 {
		axis += r
	}
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= t.shape[d]
	}
	for d := axis + 1; d < r; d++ {
		inner *= t.shape[d]
	}
	n := t.shape[axis]
	var shape []int
	for d := 0; d < r; d++ {
		if d != axis {
			shape = append(shape, t.shape[d])
		}
	}
	out := New(shape...)
	best := make([]float64, inner)
	for o := 0; o < outer; o++ {
		base := o * n * inner
		for j := 0; j < inner; j++ {
			best[j] = math.Inf(-1)
		}
		for k := 0; k < n; k++ {
			row := t.data[base+k*inner : base+(k+1)*inner]
			for j := range row {
				if row[j] > best[j] {
					best[j] = row[j]
					out.data[o*inner+j] = float64(k)
				}
			}
		}
	}
	return out
}

// Softmax computes softmax along the last axis, numerically stabilized.
func Softmax(t *Tensor) *Tensor {
	if t.Rank() == 0 {
		return Scalar(1)
	}
	last := t.Rank() - 1
	n := t.shape[last]
	rows := t.Size() / n
	out := New(t.shape...)
	for r := 0; r < rows; r++ {
		row := t.data[r*n : (r+1)*n]
		orow := out.data[r*n : (r+1)*n]
		m := math.Inf(-1)
		for _, v := range row {
			m = math.Max(m, v)
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - m)
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
	return out
}

// LogSoftmax computes log-softmax along the last axis.
func LogSoftmax(t *Tensor) *Tensor {
	if t.Rank() == 0 {
		return Scalar(0)
	}
	last := t.Rank() - 1
	n := t.shape[last]
	rows := t.Size() / n
	out := New(t.shape...)
	for r := 0; r < rows; r++ {
		row := t.data[r*n : (r+1)*n]
		orow := out.data[r*n : (r+1)*n]
		m := math.Inf(-1)
		for _, v := range row {
			m = math.Max(m, v)
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		lse := m + math.Log(sum)
		for i, v := range row {
			orow[i] = v - lse
		}
	}
	return out
}

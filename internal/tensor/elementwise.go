package tensor

import (
	"fmt"
	"math"
)

// BroadcastShapes returns the NumPy-style broadcast result of a and b, or an
// error if the shapes are incompatible.
func BroadcastShapes(a, b []int) ([]int, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}

// broadcastIndexer produces, for an output shape, the flat source offset in a
// tensor of shape src for each output element. Dimensions of size 1 in src
// repeat.
type broadcastIndexer struct {
	outShape  []int
	srcStride []int // stride per output dim (0 where src dim == 1)
}

func newBroadcastIndexer(src, out []int) broadcastIndexer {
	pad := len(out) - len(src)
	strides := Strides(src)
	ss := make([]int, len(out))
	for i := range out {
		if i < pad {
			ss[i] = 0
			continue
		}
		if src[i-pad] == 1 {
			ss[i] = 0
		} else {
			ss[i] = strides[i-pad]
		}
	}
	return broadcastIndexer{outShape: out, srcStride: ss}
}

// forEach walks the output space in row-major order invoking fn with the
// source offset for each output position.
func (bi broadcastIndexer) forEach(fn func(outIdx, srcIdx int)) {
	n := NumElems(bi.outShape)
	if n == 0 {
		return
	}
	idx := make([]int, len(bi.outShape))
	src := 0
	for out := 0; out < n; out++ {
		fn(out, src)
		// Increment multi-index.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			src += bi.srcStride[d]
			if idx[d] < bi.outShape[d] {
				break
			}
			src -= idx[d] * bi.srcStride[d]
			idx[d] = 0
		}
	}
}

// maxOdoRank bounds the stack-resident odometer used by the broadcast walks
// below; higher-rank operands fall back to the allocating indexer path.
const maxOdoRank = 8

// broadcastOdoStrides fills dst (length len(out)) with the per-output-dim
// flat strides into a tensor of shape src, exactly as newBroadcastIndexer
// computes them (0 for padded and size-1 dims), without allocating.
func broadcastOdoStrides(dst []int, src, out []int) {
	pad := len(out) - len(src)
	for i := 0; i < pad; i++ {
		dst[i] = 0
	}
	st := 1
	for i := len(src) - 1; i >= 0; i-- {
		if src[i] == 1 {
			dst[pad+i] = 0
		} else {
			dst[pad+i] = st
		}
		st *= src[i]
	}
}

// binary applies fn elementwise with broadcasting. The hot named ops below
// bypass this for the contiguous same-shape case with flat kernels that pay
// no per-element closure call; this generic path remains the broadcast
// reference. The broadcast walk advances both source offsets with a single
// stack-resident odometer — same element order and arithmetic as the
// indexer-table formulation it replaced, with no per-call offset tables.
func binary(a, b *Tensor, fn func(x, y float64) float64) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		for i := range out.data {
			out.data[i] = fn(a.data[i], b.data[i])
		}
		return out
	}
	shape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(shape...)
	r := len(shape)
	if r > maxOdoRank {
		ai := newBroadcastIndexer(a.shape, shape)
		biB := newBroadcastIndexer(b.shape, shape)
		aoff := make([]int, out.Size())
		ai.forEach(func(o, s int) { aoff[o] = s })
		biB.forEach(func(o, s int) { out.data[o] = fn(a.data[aoff[o]], b.data[s]) })
		return out
	}
	var as, bs, ix [maxOdoRank]int
	broadcastOdoStrides(as[:r], a.shape, shape)
	broadcastOdoStrides(bs[:r], b.shape, shape)
	ai, bi := 0, 0
	for o := range out.data {
		out.data[o] = fn(a.data[ai], b.data[bi])
		for d := r - 1; d >= 0; d-- {
			ix[d]++
			ai += as[d]
			bi += bs[d]
			if ix[d] < shape[d] {
				break
			}
			ai -= ix[d] * as[d]
			bi -= ix[d] * bs[d]
			ix[d] = 0
		}
	}
	return out
}

// Flat kernels: contiguous same-length loops with no closure in the inner
// loop. The graph executor calls these directly (through the op tables in
// internal/graph) so the hot elementwise path is one function call per
// tensor, not one per element. dst may be freshly allocated (all elements
// are overwritten). Each kernel computes exactly the expression the generic
// path computes, in the same operand order, so results are bit-identical.
//
// The arithmetic kernels are 4-way unrolled with explicit local temporaries
// (gonum-style): four independent lanes per iteration amortize bounds checks
// and let the compiler keep the lane values in registers. Elementwise lanes
// are independent, so unrolling cannot change results.

// AddFlat sets dst[i] = a[i] + b[i].
func AddFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] + b[i]
		d1 := a[i+1] + b[i+1]
		d2 := a[i+2] + b[i+2]
		d3 := a[i+3] + b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// SubFlat sets dst[i] = a[i] - b[i].
func SubFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// MulFlat sets dst[i] = a[i] * b[i].
func MulFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * b[i]
		d1 := a[i+1] * b[i+1]
		d2 := a[i+2] * b[i+2]
		d3 := a[i+3] * b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * b[i]
	}
}

// DivFlat sets dst[i] = a[i] / b[i].
func DivFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] / b[i]
		d1 := a[i+1] / b[i+1]
		d2 := a[i+2] / b[i+2]
		d3 := a[i+3] / b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] / b[i]
	}
}

// MaximumFlat sets dst[i] = math.Max(a[i], b[i]).
func MaximumFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = math.Max(a[i], b[i])
	}
}

// MinimumFlat sets dst[i] = math.Min(a[i], b[i]).
func MinimumFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = math.Min(a[i], b[i])
	}
}

// GreaterEqualFlat sets dst[i] = 1 where a[i] >= b[i] else 0.
func GreaterEqualFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] >= b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// LessFlat sets dst[i] = 1 where a[i] < b[i] else 0.
func LessFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] < b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// EqualFlat sets dst[i] = 1 where a[i] == b[i] else 0.
func EqualFlat(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] == b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// NegFlat sets dst[i] = -a[i].
func NegFlat(dst, a []float64) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := -a[i]
		d1 := -a[i+1]
		d2 := -a[i+2]
		d3 := -a[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = -a[i]
	}
}

// ExpFlat sets dst[i] = e**a[i].
func ExpFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Exp(a[i])
	}
}

// LogFlat sets dst[i] = ln(a[i]).
func LogFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Log(a[i])
	}
}

// SqrtFlat sets dst[i] = sqrt(a[i]).
func SqrtFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Sqrt(a[i])
	}
}

// SquareFlat sets dst[i] = a[i]*a[i].
func SquareFlat(dst, a []float64) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * a[i]
		d1 := a[i+1] * a[i+1]
		d2 := a[i+2] * a[i+2]
		d3 := a[i+3] * a[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * a[i]
	}
}

// AbsFlat sets dst[i] = |a[i]|.
func AbsFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Abs(a[i])
	}
}

// ReluFlat sets dst[i] = math.Max(a[i], 0).
func ReluFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Max(a[i], 0)
	}
}

// ReluGradFlat sets dst[i] = 1 where a[i] > 0 else 0.
func ReluGradFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		if a[i] > 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// TanhFlat sets dst[i] = tanh(a[i]).
func TanhFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Tanh(a[i])
	}
}

// SigmoidFlat sets dst[i] = sigmoid(a[i]) via sigmoidPoint.
func SigmoidFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = sigmoidPoint(a[i])
	}
}

// OneMinusFlat sets dst[i] = (-a[i]) + 1 — the exact expression of the
// composed OneMinus op (AddScalar(Neg(a), 1)).
func OneMinusFlat(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = -a[i] + 1
	}
}

// ScaleFlat sets dst[i] = a[i] * s.
func ScaleFlat(dst, a []float64, s float64) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * s
		d1 := a[i+1] * s
		d2 := a[i+2] * s
		d3 := a[i+3] * s
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * s
	}
}

// AddScalarFlat sets dst[i] = a[i] + s.
func AddScalarFlat(dst, a []float64, s float64) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] + s
		d1 := a[i+1] + s
		d2 := a[i+2] + s
		d3 := a[i+3] + s
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + s
	}
}

// ClipFlat sets dst[i] = math.Max(lo, math.Min(hi, a[i])).
func ClipFlat(dst, a []float64, lo, hi float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Max(lo, math.Min(hi, a[i]))
	}
}

// Add returns a + b with broadcasting.
func Add(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		AddFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		SubFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a * b elementwise with broadcasting.
func Mul(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		MulFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 { return x * y })
}

// Div returns a / b elementwise with broadcasting.
func Div(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		DivFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 { return x / y })
}

// Pow returns a ** b elementwise with broadcasting.
func Pow(a, b *Tensor) *Tensor { return binary(a, b, math.Pow) }

// Maximum returns the elementwise max with broadcasting.
func Maximum(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		MaximumFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, math.Max)
}

// Minimum returns the elementwise min with broadcasting.
func Minimum(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		MinimumFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, math.Min)
}

// GreaterEqual returns 1 where a >= b else 0, with broadcasting.
func GreaterEqual(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		GreaterEqualFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 {
		if x >= y {
			return 1
		}
		return 0
	})
}

// Less returns 1 where a < b else 0, with broadcasting.
func Less(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		LessFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 {
		if x < y {
			return 1
		}
		return 0
	})
}

// EqualElems returns 1 where a == b else 0, with broadcasting.
func EqualElems(a, b *Tensor) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		EqualFlat(out.data, a.data, b.data)
		return out
	}
	return binary(a, b, func(x, y float64) float64 {
		if x == y {
			return 1
		}
		return 0
	})
}

// Where returns a where cond is nonzero, else b, with broadcasting across all
// three operands.
func Where(cond, a, b *Tensor) *Tensor {
	s1, err := BroadcastShapes(cond.shape, a.shape)
	if err != nil {
		panic(err)
	}
	shape, err := BroadcastShapes(s1, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(shape...)
	if SameShape(cond.shape, shape) && SameShape(a.shape, shape) && SameShape(b.shape, shape) {
		cd, ad, bd := cond.data, a.data, b.data
		for i := range out.data {
			if cd[i] != 0 {
				out.data[i] = ad[i]
			} else {
				out.data[i] = bd[i]
			}
		}
		return out
	}
	coff := make([]int, out.Size())
	aoff := make([]int, out.Size())
	newBroadcastIndexer(cond.shape, shape).forEach(func(o, s int) { coff[o] = s })
	newBroadcastIndexer(a.shape, shape).forEach(func(o, s int) { aoff[o] = s })
	newBroadcastIndexer(b.shape, shape).forEach(func(o, s int) {
		if cond.data[coff[o]] != 0 {
			out.data[o] = a.data[aoff[o]]
		} else {
			out.data[o] = b.data[s]
		}
	})
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor {
	out := New(a.shape...)
	NegFlat(out.data, a.data)
	return out
}

// Abs returns |a|.
func Abs(a *Tensor) *Tensor {
	out := New(a.shape...)
	AbsFlat(out.data, a.data)
	return out
}

// Exp returns e**a elementwise.
func Exp(a *Tensor) *Tensor {
	out := New(a.shape...)
	ExpFlat(out.data, a.data)
	return out
}

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor {
	out := New(a.shape...)
	LogFlat(out.data, a.data)
	return out
}

// Sqrt returns sqrt(a) elementwise.
func Sqrt(a *Tensor) *Tensor {
	out := New(a.shape...)
	SqrtFlat(out.data, a.data)
	return out
}

// Square returns a*a elementwise.
func Square(a *Tensor) *Tensor {
	out := New(a.shape...)
	SquareFlat(out.data, a.data)
	return out
}

// Relu returns max(a, 0) elementwise.
func Relu(a *Tensor) *Tensor {
	out := New(a.shape...)
	ReluFlat(out.data, a.data)
	return out
}

// ReluGrad returns 1 where a > 0 else 0.
func ReluGrad(a *Tensor) *Tensor {
	out := New(a.shape...)
	ReluGradFlat(out.data, a.data)
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	out := New(a.shape...)
	TanhFlat(out.data, a.data)
	return out
}

// sigmoidPoint computes 1/(1+e^-x) in the sign-split form: the exponential
// argument is always non-positive, so math.Exp never overflows. The naive
// form loses all precision for x below about -709 (exp(-x) overflows to +Inf
// and the result collapses to exactly 0); here sigmoid(-1000) correctly
// returns the subnormal e^-1000/(1+e^-1000) ≈ e^-1000.
func sigmoidPoint(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Sigmoid returns 1/(1+e^-a) elementwise, computed in the numerically stable
// sign-split form.
func Sigmoid(a *Tensor) *Tensor {
	out := New(a.shape...)
	SigmoidFlat(out.data, a.data)
	return out
}

// Clip limits every element to [lo, hi].
func Clip(a *Tensor, lo, hi float64) *Tensor {
	out := New(a.shape...)
	ClipFlat(out.data, a.data, lo, hi)
	return out
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	ScaleFlat(out.data, a.data, s)
	return out
}

// AddScalar returns a+s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	AddScalarFlat(out.data, a.data, s)
	return out
}

// AddInPlace accumulates src (same shape) into dst.
func AddInPlace(dst, src *Tensor) {
	if !SameShape(dst.shape, src.shape) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// AddBroadcastInPlace accumulates src into dst, broadcasting src up to dst's
// shape. Each dst element receives dst[i] += src[bcast(i)], so with dst
// zero-filled the result matches Add(zeros(dstShape), src) exactly (including
// the +0 result of 0 + (-0)). src must be broadcast-compatible with dst and
// must not exceed it in any dimension.
func AddBroadcastInPlace(dst, src *Tensor) {
	if SameShape(dst.shape, src.shape) {
		AddInPlace(dst, src)
		return
	}
	pad := len(dst.shape) - len(src.shape)
	if pad < 0 {
		panic(fmt.Sprintf("tensor: AddBroadcastInPlace src %v exceeds dst %v", src.shape, dst.shape))
	}
	for i, d := range src.shape {
		if d != 1 && d != dst.shape[pad+i] {
			panic(fmt.Sprintf("tensor: AddBroadcastInPlace src %v incompatible with dst %v", src.shape, dst.shape))
		}
	}
	r := len(dst.shape)
	if r > maxOdoRank {
		bi := newBroadcastIndexer(src.shape, dst.shape)
		bi.forEach(func(dstIdx, srcIdx int) {
			dst.data[dstIdx] += src.data[srcIdx]
		})
		return
	}
	var ss, ix [maxOdoRank]int
	broadcastOdoStrides(ss[:r], src.shape, dst.shape)
	si := 0
	for d := range dst.data {
		dst.data[d] += src.data[si]
		for k := r - 1; k >= 0; k-- {
			ix[k]++
			si += ss[k]
			if ix[k] < dst.shape[k] {
				break
			}
			si -= ix[k] * ss[k]
			ix[k] = 0
		}
	}
}

// ScaleInPlace multiplies every element of dst by s.
func ScaleInPlace(dst *Tensor, s float64) {
	for i := range dst.data {
		dst.data[i] *= s
	}
}

// Fill sets every element of dst to v.
func Fill(dst *Tensor, v float64) {
	for i := range dst.data {
		dst.data[i] = v
	}
}

// UnbroadcastTo reduces grad (shaped like the broadcast output) back to
// target shape by summing over the broadcast dimensions. This is the standard
// gradient rule for broadcasting ops.
func UnbroadcastTo(grad *Tensor, target []int) *Tensor {
	if SameShape(grad.shape, target) {
		return grad.Clone()
	}
	return UnbroadcastInto(New(target...), grad)
}

// UnbroadcastInto accumulates grad into out, summing the dimensions along
// which out's shape was broadcast to produce grad's. out must be zero-filled
// (or hold a partial sum to accumulate onto) and broadcast-compatible with
// grad. It is the allocation-free core of UnbroadcastTo, for callers that
// provide arena-backed output storage.
func UnbroadcastInto(out, grad *Tensor) *Tensor {
	target := out.shape
	r := len(grad.shape)
	if r > maxOdoRank {
		bi := newBroadcastIndexer(target, grad.shape)
		bi.forEach(func(gradIdx, srcIdx int) {
			out.data[srcIdx] += grad.data[gradIdx]
		})
		return out
	}
	// Same grad-row-major accumulation order as the indexer formulation,
	// via the stack odometer.
	var ts, ix [maxOdoRank]int
	broadcastOdoStrides(ts[:r], target, grad.shape)
	si := 0
	for g := range grad.data {
		out.data[si] += grad.data[g]
		for d := r - 1; d >= 0; d-- {
			ix[d]++
			si += ts[d]
			if ix[d] < grad.shape[d] {
				break
			}
			si -= ix[d] * ts[d]
			ix[d] = 0
		}
	}
	return out
}

package tensor

import (
	"fmt"
	"math"
)

// BroadcastShapes returns the NumPy-style broadcast result of a and b, or an
// error if the shapes are incompatible.
func BroadcastShapes(a, b []int) ([]int, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}

// broadcastIndexer produces, for an output shape, the flat source offset in a
// tensor of shape src for each output element. Dimensions of size 1 in src
// repeat.
type broadcastIndexer struct {
	outShape  []int
	srcStride []int // stride per output dim (0 where src dim == 1)
}

func newBroadcastIndexer(src, out []int) broadcastIndexer {
	pad := len(out) - len(src)
	strides := Strides(src)
	ss := make([]int, len(out))
	for i := range out {
		if i < pad {
			ss[i] = 0
			continue
		}
		if src[i-pad] == 1 {
			ss[i] = 0
		} else {
			ss[i] = strides[i-pad]
		}
	}
	return broadcastIndexer{outShape: out, srcStride: ss}
}

// forEach walks the output space in row-major order invoking fn with the
// source offset for each output position.
func (bi broadcastIndexer) forEach(fn func(outIdx, srcIdx int)) {
	n := NumElems(bi.outShape)
	if n == 0 {
		return
	}
	idx := make([]int, len(bi.outShape))
	src := 0
	for out := 0; out < n; out++ {
		fn(out, src)
		// Increment multi-index.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			src += bi.srcStride[d]
			if idx[d] < bi.outShape[d] {
				break
			}
			src -= idx[d] * bi.srcStride[d]
			idx[d] = 0
		}
	}
}

// binary applies fn elementwise with broadcasting.
func binary(a, b *Tensor, fn func(x, y float64) float64) *Tensor {
	if SameShape(a.shape, b.shape) {
		out := New(a.shape...)
		for i := range out.data {
			out.data[i] = fn(a.data[i], b.data[i])
		}
		return out
	}
	shape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(shape...)
	ai := newBroadcastIndexer(a.shape, shape)
	biB := newBroadcastIndexer(b.shape, shape)
	// Walk both indexers in lockstep by materializing source offsets.
	aoff := make([]int, out.Size())
	ai.forEach(func(o, s int) { aoff[o] = s })
	biB.forEach(func(o, s int) { out.data[o] = fn(a.data[aoff[o]], b.data[s]) })
	return out
}

// Add returns a + b with broadcasting.
func Add(a, b *Tensor) *Tensor { return binary(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) *Tensor { return binary(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns a * b elementwise with broadcasting.
func Mul(a, b *Tensor) *Tensor { return binary(a, b, func(x, y float64) float64 { return x * y }) }

// Div returns a / b elementwise with broadcasting.
func Div(a, b *Tensor) *Tensor { return binary(a, b, func(x, y float64) float64 { return x / y }) }

// Pow returns a ** b elementwise with broadcasting.
func Pow(a, b *Tensor) *Tensor { return binary(a, b, math.Pow) }

// Maximum returns the elementwise max with broadcasting.
func Maximum(a, b *Tensor) *Tensor { return binary(a, b, math.Max) }

// Minimum returns the elementwise min with broadcasting.
func Minimum(a, b *Tensor) *Tensor { return binary(a, b, math.Min) }

// GreaterEqual returns 1 where a >= b else 0, with broadcasting.
func GreaterEqual(a, b *Tensor) *Tensor {
	return binary(a, b, func(x, y float64) float64 {
		if x >= y {
			return 1
		}
		return 0
	})
}

// Less returns 1 where a < b else 0, with broadcasting.
func Less(a, b *Tensor) *Tensor {
	return binary(a, b, func(x, y float64) float64 {
		if x < y {
			return 1
		}
		return 0
	})
}

// EqualElems returns 1 where a == b else 0, with broadcasting.
func EqualElems(a, b *Tensor) *Tensor {
	return binary(a, b, func(x, y float64) float64 {
		if x == y {
			return 1
		}
		return 0
	})
}

// Where returns a where cond is nonzero, else b, with broadcasting across all
// three operands.
func Where(cond, a, b *Tensor) *Tensor {
	s1, err := BroadcastShapes(cond.shape, a.shape)
	if err != nil {
		panic(err)
	}
	shape, err := BroadcastShapes(s1, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(shape...)
	coff := make([]int, out.Size())
	aoff := make([]int, out.Size())
	newBroadcastIndexer(cond.shape, shape).forEach(func(o, s int) { coff[o] = s })
	newBroadcastIndexer(a.shape, shape).forEach(func(o, s int) { aoff[o] = s })
	newBroadcastIndexer(b.shape, shape).forEach(func(o, s int) {
		if cond.data[coff[o]] != 0 {
			out.data[o] = a.data[aoff[o]]
		} else {
			out.data[o] = b.data[s]
		}
	})
	return out
}

// unary applies fn to every element.
func unary(a *Tensor, fn func(x float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = fn(a.data[i])
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return unary(a, func(x float64) float64 { return -x }) }

// Abs returns |a|.
func Abs(a *Tensor) *Tensor { return unary(a, math.Abs) }

// Exp returns e**a elementwise.
func Exp(a *Tensor) *Tensor { return unary(a, math.Exp) }

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor { return unary(a, math.Log) }

// Sqrt returns sqrt(a) elementwise.
func Sqrt(a *Tensor) *Tensor { return unary(a, math.Sqrt) }

// Square returns a*a elementwise.
func Square(a *Tensor) *Tensor { return unary(a, func(x float64) float64 { return x * x }) }

// Relu returns max(a, 0) elementwise.
func Relu(a *Tensor) *Tensor { return unary(a, func(x float64) float64 { return math.Max(x, 0) }) }

// ReluGrad returns 1 where a > 0 else 0.
func ReluGrad(a *Tensor) *Tensor {
	return unary(a, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor { return unary(a, math.Tanh) }

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return unary(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Clip limits every element to [lo, hi].
func Clip(a *Tensor, lo, hi float64) *Tensor {
	return unary(a, func(x float64) float64 { return math.Max(lo, math.Min(hi, x)) })
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	return unary(a, func(x float64) float64 { return x * s })
}

// AddScalar returns a+s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	return unary(a, func(x float64) float64 { return x + s })
}

// AddInPlace accumulates src (same shape) into dst.
func AddInPlace(dst, src *Tensor) {
	if !SameShape(dst.shape, src.shape) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// ScaleInPlace multiplies every element of dst by s.
func ScaleInPlace(dst *Tensor, s float64) {
	for i := range dst.data {
		dst.data[i] *= s
	}
}

// Fill sets every element of dst to v.
func Fill(dst *Tensor, v float64) {
	for i := range dst.data {
		dst.data[i] = v
	}
}

// UnbroadcastTo reduces grad (shaped like the broadcast output) back to
// target shape by summing over the broadcast dimensions. This is the standard
// gradient rule for broadcasting ops.
func UnbroadcastTo(grad *Tensor, target []int) *Tensor {
	if SameShape(grad.shape, target) {
		return grad.Clone()
	}
	out := New(target...)
	bi := newBroadcastIndexer(target, grad.shape)
	bi.forEach(func(gradIdx, srcIdx int) {
		out.data[srcIdx] += grad.data[gradIdx]
	})
	return out
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveConv2D is a direct quadruple-loop reference used to validate the
// im2col fast path.
func naiveConv2D(input, filter *Tensor, p ConvParams) *Tensor {
	n, h, w, c := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	kh, kw, _, oc := filter.Dim(0), filter.Dim(1), filter.Dim(2), filter.Dim(3)
	oh, ow := p.ConvOutDims(h, w, kh, kw)
	out := New(n, oh, ow, oc)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for f := 0; f < oc; f++ {
					sum := 0.0
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*p.StrideH - p.PadH + ky
							ix := ox*p.StrideW - p.PadW + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for ch := 0; ch < c; ch++ {
								sum += input.At(b, iy, ix, ch) * filter.At(ky, kx, ch, f)
							}
						}
					}
					out.Set(sum, b, oy, ox, f)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n, h, w, c, kh, kw, oc, sh, sw, ph, pw int
	}{
		{1, 5, 5, 1, 3, 3, 2, 1, 1, 0, 0},
		{2, 8, 8, 3, 3, 3, 4, 2, 2, 1, 1},
		{1, 7, 9, 2, 5, 3, 3, 2, 1, 2, 1},
		{3, 4, 4, 1, 1, 1, 2, 1, 1, 0, 0},
	} {
		in := RandNormal(rng, 0, 1, tc.n, tc.h, tc.w, tc.c)
		f := RandNormal(rng, 0, 1, tc.kh, tc.kw, tc.c, tc.oc)
		p := ConvParams{StrideH: tc.sh, StrideW: tc.sw, PadH: tc.ph, PadW: tc.pw}
		got := Conv2D(in, f, p)
		want := naiveConv2D(in, f, p)
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("conv mismatch for %+v", tc)
		}
	}
}

func TestConvOutDims(t *testing.T) {
	p := ConvParams{StrideH: 4, StrideW: 4, PadH: 0, PadW: 0}
	oh, ow := p.ConvOutDims(84, 84, 8, 8)
	if oh != 20 || ow != 20 {
		t.Fatalf("got %dx%d, want 20x20", oh, ow)
	}
}

func TestSamePaddingPreservesDims(t *testing.T) {
	ph, pw := SamePadding(3, 3)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: ph, PadW: pw}
	oh, ow := p.ConvOutDims(10, 12, 3, 3)
	if oh != 10 || ow != 12 {
		t.Fatalf("got %dx%d", oh, ow)
	}
}

// TestConvGradientsAdjoint verifies the backward kernels against the adjoint
// identity <Conv(x), gy> == <x, ConvBwdInput(gy)> and the filter analogue.
func TestConvGradientsAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := RandNormal(rng, 0, 1, 2, 6, 6, 2)
	f := RandNormal(rng, 0, 1, 3, 3, 2, 3)
	p := ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	out := Conv2D(in, f, p)
	gy := RandNormal(rng, 0, 1, out.Shape()...)

	gin := Conv2DBackwardInput(gy, f, in.Shape(), p)
	lhs := Dot(out.Flatten(), gy.Flatten())
	rhs := Dot(in.Flatten(), gin.Flatten())
	// The forward map is linear in the input, so these inner products agree
	// only when in is reused; test the bilinear identity instead:
	// <Conv(x), gy> = <x, Bwd(gy)> holds exactly for linear maps.
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("input adjoint mismatch: %g vs %g", lhs, rhs)
	}

	gf := Conv2DBackwardFilter(in, gy, f.Shape(), p)
	rhs2 := Dot(f.Flatten(), gf.Flatten())
	if math.Abs(lhs-rhs2) > 1e-9 {
		t.Fatalf("filter adjoint mismatch: %g vs %g", lhs, rhs2)
	}
}

// TestConvGradientFiniteDifference cross-checks one filter weight's gradient
// against a central finite difference of a scalar loss.
func TestConvGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := RandNormal(rng, 0, 1, 1, 5, 5, 1)
	f := RandNormal(rng, 0, 1, 3, 3, 1, 2)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 0, PadW: 0}
	loss := func(filter *Tensor) float64 {
		out := Conv2D(in, filter, p)
		return Sum(Square(out)).Item()
	}
	out := Conv2D(in, f, p)
	gy := Scale(out, 2) // d(sum(out^2))/dout
	gf := Conv2DBackwardFilter(in, gy, f.Shape(), p)

	const eps = 1e-6
	for _, k := range []int{0, 7, 13} {
		fp := f.Clone()
		fp.Data()[k] += eps
		fm := f.Clone()
		fm.Data()[k] -= eps
		num := (loss(fp) - loss(fm)) / (2 * eps)
		if math.Abs(num-gf.Data()[k]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("fd mismatch at %d: %g vs %g", k, num, gf.Data()[k])
		}
	}
}

// naiveIm2Col is a direct per-element gather reference for Im2Col.
func naiveIm2Col(input *Tensor, kh, kw int, p ConvParams) *Tensor {
	n, h, w, c := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh, ow := p.ConvOutDims(h, w, kh, kw)
	out := New(n*oh*ow, kh*kw*c)
	row := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				col := 0
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy := oy*p.StrideH - p.PadH + ky
						ix := ox*p.StrideW - p.PadW + kx
						for ch := 0; ch < c; ch++ {
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Set(input.At(b, iy, ix, ch), row, col)
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

func tensorsBitEqual(a, b *Tensor) bool {
	if !SameShape(a.Shape(), b.Shape()) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

// TestIm2ColEdgeCases covers the configurations that used to lean implicitly
// on New() zero-fill: stride > 1 with SAME padding, and kernels larger than
// the input (every patch partially padded). Im2Col is a pure gather, so it
// must match the reference bit-for-bit.
func TestIm2ColEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name               string
		n, h, w, c, kh, kw int
		sh, sw, ph, pw     int
	}{
		{"stride2-same", 2, 9, 9, 2, 3, 3, 2, 2, 1, 1},
		{"stride3-same", 1, 7, 7, 1, 5, 5, 3, 3, 2, 2},
		{"kernel-larger-than-input", 1, 3, 3, 2, 5, 5, 1, 1, 2, 2},
		{"kernel-wider-than-input", 2, 4, 2, 1, 3, 5, 1, 1, 1, 2},
	} {
		in := RandNormal(rng, 0, 1, tc.n, tc.h, tc.w, tc.c)
		p := ConvParams{StrideH: tc.sh, StrideW: tc.sw, PadH: tc.ph, PadW: tc.pw}
		got := Im2Col(in, tc.kh, tc.kw, p)
		want := naiveIm2Col(in, tc.kh, tc.kw, p)
		if !tensorsBitEqual(got, want) {
			t.Fatalf("%s: Im2Col mismatch", tc.name)
		}
		// Col2Im on the same config must satisfy the adjoint identity.
		y := RandNormal(rng, 0, 1, got.Shape()...)
		back := Col2Im(y, tc.n, tc.h, tc.w, tc.c, tc.kh, tc.kw, p)
		lhs := Dot(got.Flatten(), y.Flatten())
		rhs := Dot(in.Flatten(), back.Flatten())
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("%s: adjoint mismatch %g vs %g", tc.name, lhs, rhs)
		}
	}
}

// TestIm2ColCol2ImRoundTripProperty: folding the unfolded all-ones input
// counts, for every input cell, the number of patches that cover it. The
// counts are small integers (exact in float64), so the round trip must equal
// an independently computed coverage count exactly.
func TestIm2ColCol2ImRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2)
		h := 1 + rng.Intn(7)
		w := 1 + rng.Intn(7)
		c := 1 + rng.Intn(3)
		kh := 1 + rng.Intn(5)
		kw := 1 + rng.Intn(5)
		p := ConvParams{
			StrideH: 1 + rng.Intn(3), StrideW: 1 + rng.Intn(3),
			PadH: rng.Intn(kh), PadW: rng.Intn(kw),
		}
		oh, ow := p.ConvOutDims(h, w, kh, kw)
		if oh < 1 || ow < 1 {
			continue
		}
		ones := Ones(n, h, w, c)
		got := Col2Im(Im2Col(ones, kh, kw, p), n, h, w, c, kh, kw, p)
		want := New(n, h, w, c)
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*p.StrideH - p.PadH + ky
							ix := ox*p.StrideW - p.PadW + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for ch := 0; ch < c; ch++ {
								want.Set(want.At(b, iy, ix, ch)+1, b, iy, ix, ch)
							}
						}
					}
				}
			}
		}
		if !tensorsBitEqual(got, want) {
			t.Fatalf("trial %d (%dx%dx%dx%d k%dx%d %+v): coverage counts differ", trial, n, h, w, c, kh, kw, p)
		}
	}
}

// TestConvKernelLargerThanInput runs the full conv plus both backward passes
// on a kernel that overhangs the input on every side.
func TestConvKernelLargerThanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := RandNormal(rng, 0, 1, 1, 3, 3, 2)
	f := RandNormal(rng, 0, 1, 5, 5, 2, 3)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	got := Conv2D(in, f, p)
	want := naiveConv2D(in, f, p)
	if !got.AllClose(want, 1e-9) {
		t.Fatal("forward mismatch with oversized kernel")
	}
	gy := RandNormal(rng, 0, 1, got.Shape()...)
	gin := Conv2DBackwardInput(gy, f, in.Shape(), p)
	lhs := Dot(got.Flatten(), gy.Flatten())
	if rhs := Dot(in.Flatten(), gin.Flatten()); math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("input adjoint mismatch: %g vs %g", lhs, rhs)
	}
	gf := Conv2DBackwardFilter(in, gy, f.Shape(), p)
	if rhs := Dot(f.Flatten(), gf.Flatten()); math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("filter adjoint mismatch: %g vs %g", lhs, rhs)
	}
}

// TestConvTiledMatchesNaiveBitForBit is the differential gate for the tiled
// pipeline: forward and both backward passes must reproduce the seed
// full-materialization path bit-for-bit at every panel size and parallelism
// level, because panels only re-group — never re-order — the per-element
// accumulation sequence.
func TestConvTiledMatchesNaiveBitForBit(t *testing.T) {
	defer SetConvPanelRows(0)
	defer SetKernelParallelism(0)
	rng := rand.New(rand.NewSource(8))
	configs := []struct {
		n, h, w, c, kh, kw, oc, sh, sw, ph, pw int
	}{
		{2, 8, 8, 3, 3, 3, 4, 1, 1, 1, 1},
		{1, 7, 9, 2, 5, 3, 3, 2, 1, 2, 1},
		{2, 6, 6, 2, 3, 3, 5, 2, 2, 1, 1},
		{1, 3, 3, 2, 5, 5, 2, 1, 1, 2, 2}, // kernel larger than input
		{3, 4, 4, 1, 1, 1, 2, 1, 1, 0, 0},
	}
	for _, tc := range configs {
		in := RandNormal(rng, 0, 1, tc.n, tc.h, tc.w, tc.c)
		f := RandNormal(rng, 0, 1, tc.kh, tc.kw, tc.c, tc.oc)
		p := ConvParams{StrideH: tc.sh, StrideW: tc.sw, PadH: tc.ph, PadW: tc.pw}
		wantF := Conv2DNaive(in, f, p)
		gy := RandNormal(rng, 0, 1, wantF.Shape()...)
		wantGI := Conv2DBackwardInputNaive(gy, f, in.Shape(), p)
		wantGF := Conv2DBackwardFilterNaive(in, gy, f.Shape(), p)
		for _, panel := range []int{1, 3, 64} {
			for _, par := range []int{1, 4} {
				SetConvPanelRows(panel)
				SetKernelParallelism(par)
				if got := Conv2D(in, f, p); !tensorsBitEqual(got, wantF) {
					t.Fatalf("forward differs from naive for %+v panel=%d par=%d", tc, panel, par)
				}
				if got := Conv2DBackwardInput(gy, f, in.Shape(), p); !tensorsBitEqual(got, wantGI) {
					t.Fatalf("input grad differs from naive for %+v panel=%d par=%d", tc, panel, par)
				}
				if got := Conv2DBackwardFilter(in, gy, f.Shape(), p); !tensorsBitEqual(got, wantGF) {
					t.Fatalf("filter grad differs from naive for %+v panel=%d par=%d", tc, panel, par)
				}
			}
		}
	}
}

// TestConvScratchPeakCapped checks the structural ≤1/4 guarantee behind the
// BENCH_conv gate: at the benchmark shape (N=8, 32x32x16, 3x3 SAME), total
// in-flight panel scratch stays at or below a quarter of the full im2col
// materialization regardless of parallelism.
func TestConvScratchPeakCapped(t *testing.T) {
	defer SetConvPanelRows(0)
	defer SetKernelParallelism(0)
	rng := rand.New(rand.NewSource(9))
	in := RandNormal(rng, 0, 1, 8, 32, 32, 16)
	f := RandNormal(rng, 0, 1, 3, 3, 16, 16)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rows := 8 * 32 * 32
	full := int64(rows * 3 * 3 * 16)
	for _, par := range []int{1, 4, 16} {
		SetConvPanelRows(0)
		SetKernelParallelism(par)
		ResetConvScratchStats()
		Conv2D(in, f, p)
		if peak := ConvScratchPeak(); peak > full/4 {
			t.Fatalf("par=%d: conv scratch peak %d exceeds quarter of full im2col %d", par, peak, full)
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := RandNormal(rng, 0, 1, 1, 4, 4, 2)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(in, 3, 3, p)
	y := RandNormal(rng, 0, 1, cols.Shape()...)
	back := Col2Im(y, 1, 4, 4, 2, 3, 3, p)
	lhs := Dot(cols.Flatten(), y.Flatten())
	rhs := Dot(in.Flatten(), back.Flatten())
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %g vs %g", lhs, rhs)
	}
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveConv2D is a direct quadruple-loop reference used to validate the
// im2col fast path.
func naiveConv2D(input, filter *Tensor, p ConvParams) *Tensor {
	n, h, w, c := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	kh, kw, _, oc := filter.Dim(0), filter.Dim(1), filter.Dim(2), filter.Dim(3)
	oh, ow := p.ConvOutDims(h, w, kh, kw)
	out := New(n, oh, ow, oc)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for f := 0; f < oc; f++ {
					sum := 0.0
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*p.StrideH - p.PadH + ky
							ix := ox*p.StrideW - p.PadW + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for ch := 0; ch < c; ch++ {
								sum += input.At(b, iy, ix, ch) * filter.At(ky, kx, ch, f)
							}
						}
					}
					out.Set(sum, b, oy, ox, f)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n, h, w, c, kh, kw, oc, sh, sw, ph, pw int
	}{
		{1, 5, 5, 1, 3, 3, 2, 1, 1, 0, 0},
		{2, 8, 8, 3, 3, 3, 4, 2, 2, 1, 1},
		{1, 7, 9, 2, 5, 3, 3, 2, 1, 2, 1},
		{3, 4, 4, 1, 1, 1, 2, 1, 1, 0, 0},
	} {
		in := RandNormal(rng, 0, 1, tc.n, tc.h, tc.w, tc.c)
		f := RandNormal(rng, 0, 1, tc.kh, tc.kw, tc.c, tc.oc)
		p := ConvParams{StrideH: tc.sh, StrideW: tc.sw, PadH: tc.ph, PadW: tc.pw}
		got := Conv2D(in, f, p)
		want := naiveConv2D(in, f, p)
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("conv mismatch for %+v", tc)
		}
	}
}

func TestConvOutDims(t *testing.T) {
	p := ConvParams{StrideH: 4, StrideW: 4, PadH: 0, PadW: 0}
	oh, ow := p.ConvOutDims(84, 84, 8, 8)
	if oh != 20 || ow != 20 {
		t.Fatalf("got %dx%d, want 20x20", oh, ow)
	}
}

func TestSamePaddingPreservesDims(t *testing.T) {
	ph, pw := SamePadding(3, 3)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: ph, PadW: pw}
	oh, ow := p.ConvOutDims(10, 12, 3, 3)
	if oh != 10 || ow != 12 {
		t.Fatalf("got %dx%d", oh, ow)
	}
}

// TestConvGradientsAdjoint verifies the backward kernels against the adjoint
// identity <Conv(x), gy> == <x, ConvBwdInput(gy)> and the filter analogue.
func TestConvGradientsAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := RandNormal(rng, 0, 1, 2, 6, 6, 2)
	f := RandNormal(rng, 0, 1, 3, 3, 2, 3)
	p := ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	out := Conv2D(in, f, p)
	gy := RandNormal(rng, 0, 1, out.Shape()...)

	gin := Conv2DBackwardInput(gy, f, in.Shape(), p)
	lhs := Dot(out.Flatten(), gy.Flatten())
	rhs := Dot(in.Flatten(), gin.Flatten())
	// The forward map is linear in the input, so these inner products agree
	// only when in is reused; test the bilinear identity instead:
	// <Conv(x), gy> = <x, Bwd(gy)> holds exactly for linear maps.
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("input adjoint mismatch: %g vs %g", lhs, rhs)
	}

	gf := Conv2DBackwardFilter(in, gy, f.Shape(), p)
	rhs2 := Dot(f.Flatten(), gf.Flatten())
	if math.Abs(lhs-rhs2) > 1e-9 {
		t.Fatalf("filter adjoint mismatch: %g vs %g", lhs, rhs2)
	}
}

// TestConvGradientFiniteDifference cross-checks one filter weight's gradient
// against a central finite difference of a scalar loss.
func TestConvGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := RandNormal(rng, 0, 1, 1, 5, 5, 1)
	f := RandNormal(rng, 0, 1, 3, 3, 1, 2)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 0, PadW: 0}
	loss := func(filter *Tensor) float64 {
		out := Conv2D(in, filter, p)
		return Sum(Square(out)).Item()
	}
	out := Conv2D(in, f, p)
	gy := Scale(out, 2) // d(sum(out^2))/dout
	gf := Conv2DBackwardFilter(in, gy, f.Shape(), p)

	const eps = 1e-6
	for _, k := range []int{0, 7, 13} {
		fp := f.Clone()
		fp.Data()[k] += eps
		fm := f.Clone()
		fm.Data()[k] -= eps
		num := (loss(fp) - loss(fm)) / (2 * eps)
		if math.Abs(num-gf.Data()[k]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("fd mismatch at %d: %g vs %g", k, num, gf.Data()[k])
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := RandNormal(rng, 0, 1, 1, 4, 4, 2)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(in, 3, 3, p)
	y := RandNormal(rng, 0, 1, cols.Shape()...)
	back := Col2Im(y, 1, 4, 4, 2, 3, 3, p)
	lhs := Dot(cols.Flatten(), y.Flatten())
	rhs := Dot(in.Flatten(), back.Flatten())
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %g vs %g", lhs, rhs)
	}
}

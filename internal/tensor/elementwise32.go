package tensor

import "math"

// Float32 flat elementwise kernels — the lowered-path twins of the float64
// flat kernels in elementwise.go. Same contract: contiguous same-length
// loops, no closure in the inner loop, dst fully overwritten; the arithmetic
// kernels keep the 4-way unrolling. These are the kernels where the lowered
// path's bandwidth win is largest: a streaming add touches 12 bytes/element
// instead of 24, so on memory-bound shapes the float32 kernel approaches 2x.
//
// Transcendentals (exp, log, tanh, sigmoid, sqrt) evaluate through the
// float64 math package and round the result to float32 — one rounding step,
// at least as accurate as any native float32 polynomial would be.

// AddFlat32 sets dst[i] = a[i] + b[i].
func AddFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] + b[i]
		d1 := a[i+1] + b[i+1]
		d2 := a[i+2] + b[i+2]
		d3 := a[i+3] + b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// SubFlat32 sets dst[i] = a[i] - b[i].
func SubFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// MulFlat32 sets dst[i] = a[i] * b[i].
func MulFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * b[i]
		d1 := a[i+1] * b[i+1]
		d2 := a[i+2] * b[i+2]
		d3 := a[i+3] * b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * b[i]
	}
}

// DivFlat32 sets dst[i] = a[i] / b[i].
func DivFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] / b[i]
		d1 := a[i+1] / b[i+1]
		d2 := a[i+2] / b[i+2]
		d3 := a[i+3] / b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] / b[i]
	}
}

// max32/min32 are IEEE max/min on float32 matching math.Max/math.Min
// semantics for the values the lowered path sees (NaN propagates, +0/-0
// ordering preserved via the float64 round trip being exact for float32).
func max32(x, y float32) float32 {
	return float32(math.Max(float64(x), float64(y)))
}

func min32(x, y float32) float32 {
	return float32(math.Min(float64(x), float64(y)))
}

// MaximumFlat32 sets dst[i] = max(a[i], b[i]).
func MaximumFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = max32(a[i], b[i])
	}
}

// MinimumFlat32 sets dst[i] = min(a[i], b[i]).
func MinimumFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = min32(a[i], b[i])
	}
}

// GreaterEqualFlat32 sets dst[i] = 1 where a[i] >= b[i] else 0.
func GreaterEqualFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] >= b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// LessFlat32 sets dst[i] = 1 where a[i] < b[i] else 0.
func LessFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] < b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// EqualFlat32 sets dst[i] = 1 where a[i] == b[i] else 0.
func EqualFlat32(dst, a, b []float32) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] == b[i] {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// NegFlat32 sets dst[i] = -a[i].
func NegFlat32(dst, a []float32) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := -a[i]
		d1 := -a[i+1]
		d2 := -a[i+2]
		d3 := -a[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = -a[i]
	}
}

// ExpFlat32 sets dst[i] = e**a[i].
func ExpFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(math.Exp(float64(a[i])))
	}
}

// LogFlat32 sets dst[i] = ln(a[i]).
func LogFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(math.Log(float64(a[i])))
	}
}

// SqrtFlat32 sets dst[i] = sqrt(a[i]).
func SqrtFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(math.Sqrt(float64(a[i])))
	}
}

// SquareFlat32 sets dst[i] = a[i]*a[i].
func SquareFlat32(dst, a []float32) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * a[i]
		d1 := a[i+1] * a[i+1]
		d2 := a[i+2] * a[i+2]
		d3 := a[i+3] * a[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * a[i]
	}
}

// AbsFlat32 sets dst[i] = |a[i]|.
func AbsFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(math.Abs(float64(a[i])))
	}
}

// ReluFlat32 sets dst[i] = max(a[i], 0).
func ReluFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = max32(a[i], 0)
	}
}

// ReluGradFlat32 sets dst[i] = 1 where a[i] > 0 else 0.
func ReluGradFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		if a[i] > 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// TanhFlat32 sets dst[i] = tanh(a[i]).
func TanhFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(math.Tanh(float64(a[i])))
	}
}

// SigmoidFlat32 sets dst[i] = sigmoid(a[i]) via the sign-split sigmoidPoint.
func SigmoidFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = float32(sigmoidPoint(float64(a[i])))
	}
}

// OneMinusFlat32 sets dst[i] = (-a[i]) + 1, the composed OneMinus expression.
func OneMinusFlat32(dst, a []float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = -a[i] + 1
	}
}

// ScaleFlat32 sets dst[i] = a[i] * s.
func ScaleFlat32(dst, a []float32, s float32) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] * s
		d1 := a[i+1] * s
		d2 := a[i+2] * s
		d3 := a[i+3] * s
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] * s
	}
}

// AddScalarFlat32 sets dst[i] = a[i] + s.
func AddScalarFlat32(dst, a []float32, s float32) {
	a = a[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := a[i] + s
		d1 := a[i+1] + s
		d2 := a[i+2] + s
		d3 := a[i+3] + s
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + s
	}
}

// ClipFlat32 sets dst[i] = max(lo, min(hi, a[i])).
func ClipFlat32(dst, a []float32, lo, hi float32) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = max32(lo, min32(hi, a[i]))
	}
}

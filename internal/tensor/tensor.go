// Package tensor implements the dense numerical kernels shared by the
// static-graph and define-by-run backends. It plays the role NumPy/BLAS/cuDNN
// play underneath TensorFlow and PyTorch in the original RLgraph: both
// backends call into the same kernels, so performance differences between
// them are attributable to graph mechanics rather than math.
//
// Tensors are row-major, contiguous, float64-valued and immutable by
// convention: kernels allocate fresh outputs unless their name says otherwise
// (e.g. AddInPlace). Shapes are plain []int; a zero-rank tensor holds one
// scalar element.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major, contiguous array of float64 values.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: []int{}, data: []float64{v}}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Arange returns a rank-1 tensor [start, start+1, ..., stop).
func Arange(start, stop int) *Tensor {
	if stop < start {
		panic("tensor: Arange stop < start")
	}
	d := make([]float64, stop-start)
	for i := range d {
		d[i] = float64(start + i)
	}
	return FromSlice(d, len(d))
}

// NumElems returns the number of elements implied by shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Item returns the single element of a one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set writes v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Strides returns row-major strides for shape.
func Strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape and identical elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !SameShape(t.shape, o.shape) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and elements within
// absolute tolerance tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !SameShape(t.shape, o.shape) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// Reshape returns a view-copy of t with a new shape of equal element count.
// A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with multiple -1 dims")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for reshape %v from %v", shape, t.shape))
		}
		out[infer] = len(t.data) / known
	}
	if NumElems(out) != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %v", shape, t.shape))
	}
	return &Tensor{shape: out, data: t.data}
}

// Flatten returns t reshaped to rank 1.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(len(t.data)) }

// Package tensor implements the dense numerical kernels shared by the
// static-graph and define-by-run backends. It plays the role NumPy/BLAS/cuDNN
// play underneath TensorFlow and PyTorch in the original RLgraph: both
// backends call into the same kernels, so performance differences between
// them are attributable to graph mechanics rather than math.
//
// Tensors are row-major, contiguous, float64-valued and immutable by
// convention: kernels allocate fresh outputs unless their name says otherwise
// (e.g. AddInPlace). Shapes are plain []int; a zero-rank tensor holds one
// scalar element.
//
// A tensor may alternatively carry float32 storage (see dtype.go): the
// lowered execution path in internal/graph converts weights and feeds once at
// the plan boundary and runs the *32 kernel variants in between. Float64 is
// the default everywhere; Data() on a float32 tensor panics so a conversion
// bug fails loudly instead of reading an empty slice.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major, contiguous array of float64 (or, on the
// lowered execution path, float32) values. Exactly one of data/data32 is
// non-nil for a non-empty tensor; dtype selects the arm.
type Tensor struct {
	shape  []int
	data   []float64
	dtype  Dtype
	data32 []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: []int{}, data: []float64{v}}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Arange returns a rank-1 tensor [start, start+1, ..., stop).
func Arange(start, stop int) *Tensor {
	if stop < start {
		panic("tensor: Arange stop < start")
	}
	d := make([]float64, stop-start)
	for i := range d {
		d[i] = float64(start + i)
	}
	return FromSlice(d, len(d))
}

// NumElems returns the number of elements implied by shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	if t.dtype == Float32 {
		return len(t.data32)
	}
	return len(t.data)
}

// Data returns the underlying float64 storage. Mutating it mutates the
// tensor. Panics on a float32 tensor: float32 storage only exists inside the
// lowered execution path, and silently returning an empty slice would turn a
// missed conversion into wrong numbers instead of a crash.
func (t *Tensor) Data() []float64 {
	if t.dtype == Float32 {
		panic(fmt.Sprintf("tensor: Data() on float32 tensor %v; use Data32() or ToFloat64", t.shape))
	}
	return t.data
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	if t.dtype == Float32 {
		d := make([]float32, len(t.data32))
		copy(d, t.data32)
		return &Tensor{shape: append([]int(nil), t.shape...), dtype: Float32, data32: d}
	}
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// CopyFrom copies src's data into t. Shapes must have equal element counts
// and dtypes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Size() != src.Size() || t.dtype != src.dtype {
		panic(fmt.Sprintf("tensor: CopyFrom mismatch %v/%v vs %v/%v", t.shape, t.dtype, src.shape, src.dtype))
	}
	if t.dtype == Float32 {
		copy(t.data32, src.data32)
		return
	}
	copy(t.data, src.data)
}

// Item returns the single element of a one-element tensor.
func (t *Tensor) Item() float64 {
	if t.Size() != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", t.Size()))
	}
	if t.dtype == Float32 {
		return float64(t.data32[0])
	}
	return t.data[0]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	off := t.offset(idx)
	if t.dtype == Float32 {
		return float64(t.data32[off])
	}
	return t.data[off]
}

// Set writes v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	off := t.offset(idx)
	if t.dtype == Float32 {
		t.data32[off] = float32(v)
		return
	}
	t.data[off] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Strides returns row-major strides for shape.
func Strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape, dtype and identical
// elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !SameShape(t.shape, o.shape) || t.dtype != o.dtype {
		return false
	}
	if t.dtype == Float32 {
		for i := range t.data32 {
			if t.data32[i] != o.data32[i] {
				return false
			}
		}
		return true
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and elements within
// absolute tolerance tol. Dtypes may differ; elements compare as float64.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !SameShape(t.shape, o.shape) {
		return false
	}
	n := t.Size()
	for i := 0; i < n; i++ {
		if math.Abs(t.at(i)-o.at(i)) > tol {
			return false
		}
	}
	return true
}

// at returns flat element i as float64 regardless of dtype.
func (t *Tensor) at(i int) float64 {
	if t.dtype == Float32 {
		return float64(t.data32[i])
	}
	return t.data[i]
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if t.dtype == Float32 {
		fmt.Fprintf(&b, "f32")
		if len(t.data32) <= 16 {
			fmt.Fprintf(&b, "%v", t.data32)
		} else {
			fmt.Fprintf(&b, "[%g %g ... %g]", t.data32[0], t.data32[1], t.data32[len(t.data32)-1])
		}
		return b.String()
	}
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// Reshape returns a view-copy of t with a new shape of equal element count.
// A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with multiple -1 dims")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.Size()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for reshape %v from %v", shape, t.shape))
		}
		out[infer] = t.Size() / known
	}
	if NumElems(out) != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %v", shape, t.shape))
	}
	return &Tensor{shape: out, data: t.data, dtype: t.dtype, data32: t.data32}
}

// Flatten returns t reshaped to rank 1.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(t.Size()) }

package tensor

import "fmt"

// Fused compound kernels: single-pass loops for the two- and three-op
// elementwise chains the plan compiler pattern-matches (see
// internal/graph/fuse.go) — optimizer update rules (momentum/RMSProp/Adam
// emit Add(Scale, Scale)), relu backward (Mul(gy, ReluMask(x))), and
// residual adds (Add(x, Mul(a,b))).
//
// Every kernel performs exactly the rounding sequence of its unfused
// composition, in the same operand order: each intermediate product is
// rounded to float64 before the following add, just as the unfused chain
// rounds it into an intermediate tensor. Fused execution is therefore
// bit-for-bit identical to unfused execution — including the sign of zeros
// (relu backward computes gy*mask literally rather than branch-selecting, so
// gy < 0 against a zero mask still yields -0 like the unfused Mul).
//
// All fused kernels require identical operand shapes; the graph layer falls
// back to the composed ops when operands broadcast.

func sameShape3(name string, a, b *Tensor) {
	if !SameShape(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", name, a.shape, b.shape))
	}
}

// AddScaledInto sets out[i] = a[i] + s*b[i] and returns out.
func AddScaledInto(out, a, b *Tensor, s float64) *Tensor {
	sameShape3("AddScaled", a, b)
	ad, bd := a.data, b.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		t := s * bd[i]
		od[i] = ad[i] + t
	}
	return out
}

// AddScaled returns a + s*b (the fusion of Add(a, Scale(b, s))).
func AddScaled(a, b *Tensor, s float64) *Tensor {
	return AddScaledInto(New(a.shape...), a, b, s)
}

// ScaledAddInto sets out[i] = s*a[i] + b[i] and returns out.
func ScaledAddInto(out, a *Tensor, s float64, b *Tensor) *Tensor {
	sameShape3("ScaledAdd", a, b)
	ad, bd := a.data, b.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		t := s * ad[i]
		od[i] = t + bd[i]
	}
	return out
}

// ScaledAdd returns s*a + b (the fusion of Add(Scale(a, s), b)).
func ScaledAdd(a *Tensor, s float64, b *Tensor) *Tensor {
	return ScaledAddInto(New(a.shape...), a, s, b)
}

// SubScaledInto sets out[i] = a[i] - s*b[i] and returns out.
func SubScaledInto(out, a, b *Tensor, s float64) *Tensor {
	sameShape3("SubScaled", a, b)
	ad, bd := a.data, b.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		t := s * bd[i]
		od[i] = ad[i] - t
	}
	return out
}

// SubScaled returns a - s*b (the fusion of Sub(a, Scale(b, s))).
func SubScaled(a, b *Tensor, s float64) *Tensor {
	return SubScaledInto(New(a.shape...), a, b, s)
}

// ScaleAddScaleInto sets out[i] = sa*a[i] + sb*b[i] and returns out.
func ScaleAddScaleInto(out, a *Tensor, sa float64, b *Tensor, sb float64) *Tensor {
	sameShape3("ScaleAddScale", a, b)
	ad, bd := a.data, b.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		ta := sa * ad[i]
		tb := sb * bd[i]
		od[i] = ta + tb
	}
	return out
}

// ScaleAddScale returns sa*a + sb*b (the fusion of Add(Scale(a, sa),
// Scale(b, sb)) — the shape of momentum, RMSProp, and Adam moment updates).
func ScaleAddScale(a *Tensor, sa float64, b *Tensor, sb float64) *Tensor {
	return ScaleAddScaleInto(New(a.shape...), a, sa, b, sb)
}

// MulAddInto sets out[i] = a[i] + b[i]*c[i] and returns out.
func MulAddInto(out, a, b, c *Tensor) *Tensor {
	sameShape3("MulAdd", a, b)
	sameShape3("MulAdd", b, c)
	ad, bd, cd := a.data, b.data[:len(a.data)], c.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		t := bd[i] * cd[i]
		od[i] = ad[i] + t
	}
	return out
}

// MulAdd returns a + b*c (the fusion of Add(a, Mul(b, c))).
func MulAdd(a, b, c *Tensor) *Tensor {
	return MulAddInto(New(a.shape...), a, b, c)
}

// AddMulInto sets out[i] = a[i]*b[i] + c[i] and returns out.
func AddMulInto(out, a, b, c *Tensor) *Tensor {
	sameShape3("AddMul", a, b)
	sameShape3("AddMul", b, c)
	ad, bd, cd := a.data, b.data[:len(a.data)], c.data[:len(a.data)]
	od := out.data[:len(a.data)]
	for i := range od {
		t := ad[i] * bd[i]
		od[i] = t + cd[i]
	}
	return out
}

// AddMul returns a*b + c (the fusion of Add(Mul(a, b), c)).
func AddMul(a, b, c *Tensor) *Tensor {
	return AddMulInto(New(a.shape...), a, b, c)
}

// ReluBackwardInto sets out[i] = gy[i] * mask(x[i]) where mask is 1 for
// x > 0 else 0, and returns out.
func ReluBackwardInto(out, gy, x *Tensor) *Tensor {
	sameShape3("ReluBackward", gy, x)
	gd, xd := gy.data, x.data[:len(gy.data)]
	od := out.data[:len(gy.data)]
	for i := range od {
		m := 0.0
		if xd[i] > 0 {
			m = 1
		}
		od[i] = gd[i] * m
	}
	return out
}

// ReluBackward returns gy*mask(x) — the fusion of Mul(gy, ReluGrad(x)), the
// backward pass of Relu.
func ReluBackward(gy, x *Tensor) *Tensor {
	return ReluBackwardInto(New(gy.shape...), gy, x)
}

// AxpyInPlace accumulates dst[i] += s*x[i] in one pass — the fusion of
// AddInPlace(dst, Scale(x, s)), the SGD/gradient-accumulation update. The
// product is rounded before the add, exactly like the unfused pair.
func AxpyInPlace(dst *Tensor, s float64, x *Tensor) {
	if !SameShape(dst.shape, x.shape) {
		panic(fmt.Sprintf("tensor: AxpyInPlace shape mismatch %v vs %v", dst.shape, x.shape))
	}
	dd, xd := dst.data, x.data[:len(dst.data)]
	for i := range dd {
		t := s * xd[i]
		dd[i] += t
	}
}

package tensor

// Float32 fused compound kernels — the lowered-path twins of fused.go. Same
// contract: identical operand shapes (the lowered fusion closures fall back
// to the composed ops when operands broadcast), and each kernel performs
// exactly the rounding sequence of its unfused float32 composition — every
// intermediate product rounds to float32 before the following add, just as
// the unfused chain would round it into an intermediate float32 tensor.
// Scale constants arrive already rounded to float32 (the lowering converts
// each op's float64 attribute once at plan-compile time).

// AddScaledInto32 sets out[i] = a[i] + s*b[i] and returns out.
func AddScaledInto32(out, a, b *Tensor, s float32) *Tensor {
	sameShape3("AddScaled32", a, b)
	ad, bd := a.data32, b.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		t := s * bd[i]
		od[i] = ad[i] + t
	}
	return out
}

// ScaledAddInto32 sets out[i] = s*a[i] + b[i] and returns out.
func ScaledAddInto32(out, a *Tensor, s float32, b *Tensor) *Tensor {
	sameShape3("ScaledAdd32", a, b)
	ad, bd := a.data32, b.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		t := s * ad[i]
		od[i] = t + bd[i]
	}
	return out
}

// SubScaledInto32 sets out[i] = a[i] - s*b[i] and returns out.
func SubScaledInto32(out, a, b *Tensor, s float32) *Tensor {
	sameShape3("SubScaled32", a, b)
	ad, bd := a.data32, b.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		t := s * bd[i]
		od[i] = ad[i] - t
	}
	return out
}

// ScaleAddScaleInto32 sets out[i] = sa*a[i] + sb*b[i] and returns out.
func ScaleAddScaleInto32(out, a *Tensor, sa float32, b *Tensor, sb float32) *Tensor {
	sameShape3("ScaleAddScale32", a, b)
	ad, bd := a.data32, b.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		ta := sa * ad[i]
		tb := sb * bd[i]
		od[i] = ta + tb
	}
	return out
}

// MulAddInto32 sets out[i] = a[i] + b[i]*c[i] and returns out.
func MulAddInto32(out, a, b, c *Tensor) *Tensor {
	sameShape3("MulAdd32", a, b)
	sameShape3("MulAdd32", b, c)
	ad, bd, cd := a.data32, b.data32[:len(a.data32)], c.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		t := bd[i] * cd[i]
		od[i] = ad[i] + t
	}
	return out
}

// AddMulInto32 sets out[i] = a[i]*b[i] + c[i] and returns out.
func AddMulInto32(out, a, b, c *Tensor) *Tensor {
	sameShape3("AddMul32", a, b)
	sameShape3("AddMul32", b, c)
	ad, bd, cd := a.data32, b.data32[:len(a.data32)], c.data32[:len(a.data32)]
	od := out.data32[:len(a.data32)]
	for i := range od {
		t := ad[i] * bd[i]
		od[i] = t + cd[i]
	}
	return out
}

// ReluBackwardInto32 sets out[i] = gy[i] * mask(x[i]) where mask is 1 for
// x > 0 else 0, and returns out. Like the float64 kernel it multiplies
// literally rather than branch-selecting, preserving -0 signs.
func ReluBackwardInto32(out, gy, x *Tensor) *Tensor {
	sameShape3("ReluBackward32", gy, x)
	gd, xd := gy.data32, x.data32[:len(gy.data32)]
	od := out.data32[:len(gy.data32)]
	for i := range od {
		var m float32
		if xd[i] > 0 {
			m = 1
		}
		od[i] = gd[i] * m
	}
	return out
}

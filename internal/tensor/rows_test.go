package tensor

import (
	"math/rand"
	"testing"
)

func TestStackRowsMatchesStack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := []*Tensor{
		RandNormal(rng, 0, 1, 3, 4),
		RandNormal(rng, 0, 1, 3, 4),
		RandNormal(rng, 0, 1, 3, 4),
	}
	got, err := StackRows([]int{3, 4}, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := Stack(rows...)
	if !got.Equal(want) {
		t.Fatalf("StackRows = %v, want %v", got, want)
	}
}

func TestStackRowsScalarElems(t *testing.T) {
	rows := []*Tensor{Scalar(1), Scalar(2), Scalar(3)}
	got, err := StackRows(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(got.Shape(), []int{3}) {
		t.Fatalf("shape = %v, want [3]", got.Shape())
	}
	for i, v := range got.Data() {
		if v != float64(i+1) {
			t.Fatalf("row %d = %g", i, v)
		}
	}
}

func TestStackRowsEmpty(t *testing.T) {
	got, err := StackRows([]int{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(got.Shape(), []int{0, 5}) {
		t.Fatalf("shape = %v, want [0 5]", got.Shape())
	}
}

func TestStackRowsRejectsBadRows(t *testing.T) {
	if _, err := StackRows([]int{2}, []*Tensor{New(2), New(3)}); err == nil {
		t.Fatal("mismatched row accepted")
	}
	if _, err := StackRows([]int{2}, []*Tensor{New(2), nil}); err == nil {
		t.Fatal("nil row accepted")
	}
}

func TestSplitRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	batch := RandNormal(rng, 0, 1, 4, 2, 3)
	rows, err := SplitRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	back, err := StackRows([]int{2, 3}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(batch) {
		t.Fatal("StackRows(SplitRows(x)) != x")
	}
	// Rows own their storage: mutating one must not touch the batch.
	rows[0].Data()[0] = 999
	if batch.Data()[0] == 999 {
		t.Fatal("SplitRows row aliases the batch")
	}
}

func TestSplitRowsMatchesUnstack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batch := RandNormal(rng, 0, 1, 5, 7)
	rows, err := SplitRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	want := Unstack(batch)
	for i := range rows {
		if !rows[i].Equal(want[i]) {
			t.Fatalf("row %d differs from Unstack", i)
		}
	}
}

func TestSplitRowsRejectsScalar(t *testing.T) {
	if _, err := SplitRows(Scalar(1)); err == nil {
		t.Fatal("rank-0 accepted")
	}
	if _, err := SplitRows(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

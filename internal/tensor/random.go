package tensor

import (
	"math"
	"math/rand"
)

// RandUniform fills a new tensor with samples from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// RandNormal fills a new tensor with samples from N(mean, std²).
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + rng.NormFloat64()*std
	}
	return t
}

// GlorotUniform fills a new tensor with Glorot/Xavier-uniform samples for a
// weight of the given fan-in and fan-out.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, shape...)
}

// RandPerm returns a rank-1 tensor holding a random permutation of [0,n).
func RandPerm(rng *rand.Rand, n int) *Tensor {
	p := rng.Perm(n)
	d := make([]float64, n)
	for i, v := range p {
		d[i] = float64(v)
	}
	return FromSlice(d, n)
}

package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Kernel parallelism controls how many goroutines the blocked matmul kernels
// may use. The contract (see DESIGN.md §5.7):
//
//   - SetKernelParallelism(n) with n >= 1 caps kernel workers at n; n <= 0
//     resets to runtime.NumCPU(). The setting is global and may be changed at
//     any time; in-flight kernels finish with the value they started with.
//   - Parallel execution never changes results: work is partitioned over
//     output row ranges, so every output element is still produced by exactly
//     one goroutine with the same rounding sequence as the serial kernel.
//   - Below a size threshold kernels run serially on the calling goroutine,
//     so small ops never pay synchronization costs.
var kernelPar atomic.Int32

// SetKernelParallelism caps the number of goroutines tensor kernels use.
// n <= 0 restores the default (runtime.NumCPU()).
func SetKernelParallelism(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	kernelPar.Store(int32(n))
	ensureKernelWorkers(n - 1)
}

// KernelParallelism reports the current kernel worker cap.
func KernelParallelism() int {
	if v := kernelPar.Load(); v > 0 {
		return int(v)
	}
	return runtime.NumCPU()
}

// kernelTasks feeds the persistent worker pool. Handoff is unbuffered: if no
// worker is free to receive, parallelFor falls back to spawning a fresh
// goroutine, so submission never blocks and never deadlocks regardless of
// pool size.
var (
	kernelTasks   = make(chan func())
	kernelWorkers int32 // workers spawned so far (atomic)
	workerMu      sync.Mutex
)

func ensureKernelWorkers(n int) {
	if n <= 0 || int(atomic.LoadInt32(&kernelWorkers)) >= n {
		return
	}
	workerMu.Lock()
	for int(kernelWorkers) < n {
		kernelWorkers++
		go func() {
			for f := range kernelTasks {
				f()
			}
		}()
	}
	workerMu.Unlock()
}

// parallelFor runs fn(0..parts-1) concurrently, executing part 0 on the
// calling goroutine, and returns when all parts finished. parts <= 1 runs
// inline.
func parallelFor(parts int, fn func(part int)) {
	if parts <= 1 {
		fn(0)
		return
	}
	ensureKernelWorkers(KernelParallelism() - 1)
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for p := 1; p < parts; p++ {
		task := func(p int) func() {
			return func() { defer wg.Done(); fn(p) }
		}(p)
		select {
		case kernelTasks <- task:
		default:
			go task()
		}
	}
	fn(0)
	wg.Wait()
}

// matmulParallelThreshold is the minimum m*k*n multiply-add count before a
// matmul fans out to the worker pool; below it the fork/join overhead
// (microseconds) is comparable to the kernel itself.
const matmulParallelThreshold = 1 << 18

// matmulParts picks the row-partition count for an [m,k]x[k,n] product.
func matmulParts(m, k, n int) int {
	if m*k*n < matmulParallelThreshold {
		return 1
	}
	parts := KernelParallelism()
	// Keep at least 8 rows per part so panel tiling stays effective.
	if max := m / 8; parts > max {
		parts = max
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

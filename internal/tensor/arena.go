package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Arena is a size-bucketed tensor recycler. Get returns a zeroed tensor
// exactly like New; Put hands a tensor back for reuse. Buckets are powers of
// two over the backing array's capacity, so any tensor whose capacity covers
// a requested size can serve it.
//
// Ownership rules (the plan executor's liveness analysis enforces these, see
// DESIGN.md §5.7): Put transfers exclusive ownership of the tensor AND its
// backing array to the arena — the caller must hold no live references,
// views (Reshape shares storage), or slices of it. Get transfers exclusive
// ownership back out. All methods are safe for concurrent use; a nil *Arena
// degrades to plain allocation.
type Arena struct {
	buckets [arenaBuckets]sync.Pool // of *Tensor, data cap >= 1<<bucket
	// buckets32 holds recycled float32 tensors. Buckets are keyed by dtype:
	// a float64 buffer can never serve a float32 request (and vice versa),
	// so the two arms pool independently.
	buckets32 [arenaBuckets]sync.Pool
	gets      atomic.Int64
	hits      atomic.Int64
}

const arenaBuckets = 27 // largest bucket: 2^26 elems = 512 MiB of float64

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a zero-filled tensor of the given shape, recycling a pooled
// buffer when one large enough is available.
func (a *Arena) Get(shape ...int) *Tensor {
	n := NumElems(shape)
	if a == nil || n == 0 {
		return New(shape...)
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b >= arenaBuckets {
		return New(shape...)
	}
	a.gets.Add(1)
	if v := a.buckets[b].Get(); v != nil {
		a.hits.Add(1)
		t := v.(*Tensor)
		t.shape = append(t.shape[:0], shape...)
		t.data = t.data[:n]
		clear(t.data)
		return t
	}
	return &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n, 1<<b),
	}
}

// Get32 is Get for float32 tensors, serving from the float32 bucket arm.
func (a *Arena) Get32(shape ...int) *Tensor {
	n := NumElems(shape)
	if a == nil || n == 0 {
		return New32(shape...)
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b >= arenaBuckets {
		return New32(shape...)
	}
	a.gets.Add(1)
	if v := a.buckets32[b].Get(); v != nil {
		a.hits.Add(1)
		t := v.(*Tensor)
		t.shape = append(t.shape[:0], shape...)
		t.data32 = t.data32[:n]
		clear(t.data32)
		return t
	}
	return &Tensor{
		shape:  append([]int(nil), shape...),
		dtype:  Float32,
		data32: make([]float32, n, 1<<b),
	}
}

// Get2 is Get for the common rank-2 case with a fixed-arity signature, so
// hot callers (matmul evals) pay no variadic shape-slice allocation.
func (a *Arena) Get2(d0, d1 int) *Tensor {
	n := d0 * d1
	if a == nil || n == 0 {
		return New(d0, d1)
	}
	b := bits.Len(uint(n - 1))
	if b >= arenaBuckets {
		return New(d0, d1)
	}
	a.gets.Add(1)
	if v := a.buckets[b].Get(); v != nil {
		a.hits.Add(1)
		t := v.(*Tensor)
		t.shape = append(t.shape[:0], d0, d1)
		t.data = t.data[:n]
		clear(t.data)
		return t
	}
	return &Tensor{shape: []int{d0, d1}, data: make([]float64, n, 1<<b)}
}

// Put recycles t into the bucket arm matching its dtype. The caller must not
// use t (or anything sharing its storage) afterwards. Tensors whose backing
// array is too small or too large to bucket are dropped.
func (a *Arena) Put(t *Tensor) {
	if a == nil || t == nil {
		return
	}
	if t.dtype == Float32 {
		c := cap(t.data32)
		if c == 0 {
			return
		}
		b := bits.Len(uint(c)) - 1
		if b >= arenaBuckets {
			return
		}
		t.data32 = t.data32[:1<<b]
		a.buckets32[b].Put(t)
		return
	}
	c := cap(t.data)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1 // floor(log2(c))
	if b >= arenaBuckets {
		return
	}
	t.data = t.data[:1<<b]
	a.buckets[b].Put(t)
}

// Stats reports (gets, hits) counters: how many allocations the arena served
// and how many of those reused a pooled buffer.
func (a *Arena) Stats() (gets, hits int64) {
	return a.gets.Load(), a.hits.Load()
}

// scratchArena recycles kernel-internal scratch (transpose panels). Scratch
// is fully overwritten before use, so getScratch skips Get's zero fill.
var scratchArena Arena

func getScratch(n int) *Tensor {
	if n == 0 {
		return New(0)
	}
	b := bits.Len(uint(n - 1))
	if b >= arenaBuckets {
		return &Tensor{shape: []int{n}, data: make([]float64, n)}
	}
	scratchArena.gets.Add(1)
	if v := scratchArena.buckets[b].Get(); v != nil {
		scratchArena.hits.Add(1)
		t := v.(*Tensor)
		t.shape = append(t.shape[:0], n)
		t.data = t.data[:n]
		return t
	}
	return &Tensor{shape: []int{n}, data: make([]float64, n, 1<<b)}
}

func putScratch(t *Tensor) { scratchArena.Put(t) }

// getScratch32 is getScratch for float32 kernel scratch (transpose panels,
// im2col panels of the lowered conv path).
func getScratch32(n int) *Tensor {
	if n == 0 {
		return New32(0)
	}
	b := bits.Len(uint(n - 1))
	if b >= arenaBuckets {
		return &Tensor{shape: []int{n}, dtype: Float32, data32: make([]float32, n)}
	}
	scratchArena.gets.Add(1)
	if v := scratchArena.buckets32[b].Get(); v != nil {
		scratchArena.hits.Add(1)
		t := v.(*Tensor)
		t.shape = append(t.shape[:0], n)
		t.data32 = t.data32[:n]
		return t
	}
	return &Tensor{shape: []int{n}, dtype: Float32, data32: make([]float32, n, 1<<b)}
}

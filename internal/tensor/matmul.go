package tensor

import "fmt"

// MatMul multiplies two rank-2 tensors: [m,k] x [k,n] -> [m,n].
// The inner loop is ordered i-k-j so the innermost accesses are sequential,
// which matters for the conv/im2col path built on top of this kernel.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := bd[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA computes aᵀ x b for a:[k,m], b:[k,n] -> [m,n] without
// materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA wants rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for kk := 0; kk < k; kk++ {
		arow := ad[kk*m : (kk+1)*m]
		brow := bd[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes a x bᵀ for a:[m,k], b:[n,k] -> [m,n] without
// materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB wants rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			sum := 0.0
			for kk := range arow {
				sum += arow[kk] * brow[kk]
			}
			od[i*n+j] = sum
		}
	}
	return out
}

// MatVec multiplies a rank-2 tensor [m,k] with a rank-1 vector [k] -> [m].
func MatVec(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v x %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		sum := 0.0
		for j := range row {
			sum += row[j] * v.data[j]
		}
		out.data[i] = sum
	}
	return out
}

// Dot returns the inner product of two rank-1 tensors of equal length.
func Dot(a, b *Tensor) float64 {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: Dot shape mismatch %v . %v", a.shape, b.shape))
	}
	sum := 0.0
	for i := range a.data {
		sum += a.data[i] * b.data[i]
	}
	return sum
}

package tensor

import "fmt"

// Matrix multiplication kernels.
//
// All three products (MatMul, MatMulTransA, MatMulTransB) lower onto one
// cache-blocked row-panel kernel over a row-major A and B; the transposed
// variants first transpose the relevant operand into pooled scratch, which
// costs O(elements) against the O(m·k·n) product and lets every case share
// the fast path. The kernel is blocked over k (so a panel of B stays in
// cache), register-tiled 4 output rows x 4 k-steps at a time, and
// parallelized by partitioning output rows across a goroutine pool (see
// kernels.go).
//
// Every output element accumulates its k products in ascending-k order with
// one rounded add per product — exactly the sequence of the naive i-k-j
// triple loop — so blocked, tiled, and parallel execution are bit-for-bit
// identical to MatMulNaive. The seed kernel's `if av == 0 { continue }`
// zero-skip was removed: on dense data it is a data-dependent branch per
// element (measurably slower), and it silently converted 0·Inf and 0·NaN
// into 0 instead of NaN.

// kBlock is the k-panel width: 256 k-rows of B at typical n keep the panel
// plus four output rows inside L2.
const kBlock = 256

// matMulDims validates rank-2 operands for an [m,k]x[k,n] product.
func matMulDims(name string, a, b *Tensor, ka, kb int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s wants rank-2 operands, got %v x %v", name, a.shape, b.shape))
	}
	if ka != kb {
		panic(fmt.Sprintf("tensor: %s inner dims differ: %v x %v", name, a.shape, b.shape))
	}
}

// MatMul multiplies two rank-2 tensors: [m,k] x [k,n] -> [m,n].
func MatMul(a, b *Tensor) *Tensor {
	matMulDims("MatMul", a, b, a.shape[1], b.shape[0])
	out := New(a.shape[0], b.shape[1])
	matMulCore(a.data, b.data, out.data, a.shape[0], a.shape[1], b.shape[1])
	return out
}

// MatMulInto computes a x b into out, which must be a zero-filled [m,n]
// tensor (as produced by New or Arena.Get). It returns out.
func MatMulInto(out, a, b *Tensor) *Tensor {
	matMulDims("MatMul", a, b, a.shape[1], b.shape[0])
	m, n := a.shape[0], b.shape[1]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	matMulCore(a.data, b.data, out.data, m, a.shape[1], n)
	return out
}

// MatMulTransA computes aᵀ x b for a:[k,m], b:[k,n] -> [m,n] without
// materializing the transpose in the caller.
func MatMulTransA(a, b *Tensor) *Tensor {
	matMulDims("MatMulTransA", a, b, a.shape[0], b.shape[0])
	out := New(a.shape[1], b.shape[1])
	return matMulTransAInto(out, a, b)
}

// MatMulTransAInto computes aᵀ x b into zero-filled out.
func MatMulTransAInto(out, a, b *Tensor) *Tensor {
	matMulDims("MatMulTransA", a, b, a.shape[0], b.shape[0])
	m, n := a.shape[1], b.shape[1]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	return matMulTransAInto(out, a, b)
}

func matMulTransAInto(out, a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	at := getScratch(m * k)
	transposeInto(at.data, a.data, k, m)
	matMulCore(at.data, b.data, out.data, m, k, b.shape[1])
	putScratch(at)
	return out
}

// MatMulTransB computes a x bᵀ for a:[m,k], b:[n,k] -> [m,n] without
// materializing the transpose in the caller.
func MatMulTransB(a, b *Tensor) *Tensor {
	matMulDims("MatMulTransB", a, b, a.shape[1], b.shape[1])
	out := New(a.shape[0], b.shape[0])
	return matMulTransBInto(out, a, b)
}

// MatMulTransBInto computes a x bᵀ into zero-filled out.
func MatMulTransBInto(out, a, b *Tensor) *Tensor {
	matMulDims("MatMulTransB", a, b, a.shape[1], b.shape[1])
	m, n := a.shape[0], b.shape[0]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	return matMulTransBInto(out, a, b)
}

func matMulTransBInto(out, a, b *Tensor) *Tensor {
	n, k := b.shape[0], b.shape[1]
	bt := getScratch(k * n)
	transposeInto(bt.data, b.data, n, k)
	matMulCore(a.data, bt.data, out.data, a.shape[0], k, n)
	putScratch(bt)
	return out
}

// transposeInto writes the [rows,cols] matrix src into dst as [cols,rows],
// 32x32-tiled so both sides stream through cache lines.
func transposeInto(dst, src []float64, rows, cols int) {
	const tile = 32
	for i0 := 0; i0 < rows; i0 += tile {
		i1 := i0 + tile
		if i1 > rows {
			i1 = rows
		}
		for j0 := 0; j0 < cols; j0 += tile {
			j1 := j0 + tile
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				row := src[i*cols : i*cols+cols]
				for j := j0; j < j1; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// matMulCore accumulates ad([m,k]) x bd([k,n]) into od([m,n]), partitioning
// output rows across the kernel pool when the product is large enough.
func matMulCore(ad, bd, od []float64, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	parts := matmulParts(m, k, n)
	if parts <= 1 {
		matMulRows(ad, bd, od, 0, m, k, n)
		return
	}
	parallelFor(parts, func(p int) {
		matMulRows(ad, bd, od, m*p/parts, m*(p+1)/parts, k, n)
	})
}

// matMulRows computes output rows [i0,i1) of ad x bd. For each k-panel it
// walks 4 output rows at once, loading 4 B rows per inner pass; the inner
// loop performs 16 multiply-adds per 4 B-loads with the adds of each output
// element strictly ordered by k.
func matMulRows(ad, bd, od []float64, i0, i1, k, n int) {
	for kb := 0; kb < k; kb += kBlock {
		ke := kb + kBlock
		if ke > k {
			ke = k
		}
		i := i0
		for ; i+4 <= i1; i += 4 {
			a0 := ad[(i+0)*k : (i+0)*k+k]
			a1 := ad[(i+1)*k : (i+1)*k+k]
			a2 := ad[(i+2)*k : (i+2)*k+k]
			a3 := ad[(i+3)*k : (i+3)*k+k]
			o0 := od[(i+0)*n : (i+0)*n+n]
			o1 := od[(i+1)*n : (i+1)*n+n]
			o2 := od[(i+2)*n : (i+2)*n+n]
			o3 := od[(i+3)*n : (i+3)*n+n]
			kk := kb
			for ; kk+4 <= ke; kk += 4 {
				b0 := bd[(kk+0)*n : (kk+0)*n+n]
				b1 := bd[(kk+1)*n : (kk+1)*n+n]
				b2 := bd[(kk+2)*n : (kk+2)*n+n]
				b3 := bd[(kk+3)*n : (kk+3)*n+n]
				a00, a01, a02, a03 := a0[kk], a0[kk+1], a0[kk+2], a0[kk+3]
				a10, a11, a12, a13 := a1[kk], a1[kk+1], a1[kk+2], a1[kk+3]
				a20, a21, a22, a23 := a2[kk], a2[kk+1], a2[kk+2], a2[kk+3]
				a30, a31, a32, a33 := a3[kk], a3[kk+1], a3[kk+2], a3[kk+3]
				for j := 0; j < n; j++ {
					bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
					s := o0[j]
					s += a00 * bv0
					s += a01 * bv1
					s += a02 * bv2
					s += a03 * bv3
					o0[j] = s
					s = o1[j]
					s += a10 * bv0
					s += a11 * bv1
					s += a12 * bv2
					s += a13 * bv3
					o1[j] = s
					s = o2[j]
					s += a20 * bv0
					s += a21 * bv1
					s += a22 * bv2
					s += a23 * bv3
					o2[j] = s
					s = o3[j]
					s += a30 * bv0
					s += a31 * bv1
					s += a32 * bv2
					s += a33 * bv3
					o3[j] = s
				}
			}
			for ; kk < ke; kk++ {
				brow := bd[kk*n : kk*n+n]
				av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
				for j := 0; j < n; j++ {
					bv := brow[j]
					o0[j] += av0 * bv
					o1[j] += av1 * bv
					o2[j] += av2 * bv
					o3[j] += av3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			orow := od[i*n : i*n+n]
			kk := kb
			for ; kk+4 <= ke; kk += 4 {
				b0 := bd[(kk+0)*n : (kk+0)*n+n]
				b1 := bd[(kk+1)*n : (kk+1)*n+n]
				b2 := bd[(kk+2)*n : (kk+2)*n+n]
				b3 := bd[(kk+3)*n : (kk+3)*n+n]
				av0, av1, av2, av3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
				for j := 0; j < n; j++ {
					s := orow[j]
					s += av0 * b0[j]
					s += av1 * b1[j]
					s += av2 * b2[j]
					s += av3 * b3[j]
					orow[j] = s
				}
			}
			for ; kk < ke; kk++ {
				brow := bd[kk*n : kk*n+n]
				av := arow[kk]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulNaive is the straightforward i-k-j triple loop: the arithmetic
// reference the blocked kernels are tested bit-for-bit against, and the
// serial baseline for BENCH_kernels.json.
func MatMulNaive(a, b *Tensor) *Tensor {
	matMulDims("MatMul", a, b, a.shape[1], b.shape[0])
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := bd[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransANaive is the k-outer saxpy reference for aᵀ x b.
func MatMulTransANaive(a, b *Tensor) *Tensor {
	matMulDims("MatMulTransA", a, b, a.shape[0], b.shape[0])
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for kk := 0; kk < k; kk++ {
		arow := ad[kk*m : (kk+1)*m]
		brow := bd[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			orow := od[i*n : (i+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransBNaive is the dot-product reference for a x bᵀ.
func MatMulTransBNaive(a, b *Tensor) *Tensor {
	matMulDims("MatMulTransB", a, b, a.shape[1], b.shape[1])
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			sum := 0.0
			for kk := range arow {
				sum += arow[kk] * brow[kk]
			}
			od[i*n+j] = sum
		}
	}
	return out
}

// MatVec multiplies a rank-2 tensor [m,k] with a rank-1 vector [k] -> [m].
func MatVec(a, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v x %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		sum := 0.0
		for j := range row {
			sum += row[j] * v.data[j]
		}
		out.data[i] = sum
	}
	return out
}

// Dot returns the inner product of two rank-1 tensors of equal length.
func Dot(a, b *Tensor) float64 {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: Dot shape mismatch %v . %v", a.shape, b.shape))
	}
	sum := 0.0
	for i := range a.data {
		sum += a.data[i] * b.data[i]
	}
	return sum
}

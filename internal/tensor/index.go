package tensor

import "fmt"

// GatherRows selects rows of t (leading axis) by the integer-valued indices
// tensor (rank 1). Output shape is [len(indices), t.shape[1:]...].
func GatherRows(t *Tensor, indices *Tensor) *Tensor {
	if indices.Rank() != 1 {
		panic(fmt.Sprintf("tensor: GatherRows wants rank-1 indices, got %v", indices.shape))
	}
	rest := t.shape[1:]
	size := NumElems(rest)
	shape := append([]int{indices.shape[0]}, rest...)
	out := New(shape...)
	for i, fi := range indices.data {
		idx := int(fi)
		if idx < 0 || idx >= t.shape[0] {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of range %d", idx, t.shape[0]))
		}
		copy(out.data[i*size:(i+1)*size], t.data[idx*size:(idx+1)*size])
	}
	return out
}

// ScatterAddRows accumulates each row of src into dst at the row given by
// indices. dst is modified in place.
func ScatterAddRows(dst, src *Tensor, indices *Tensor) {
	rest := dst.shape[1:]
	size := NumElems(rest)
	for i, fi := range indices.data {
		idx := int(fi)
		drow := dst.data[idx*size : (idx+1)*size]
		srow := src.data[i*size : (i+1)*size]
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// TakeAlongLastAxis picks, for each leading position, the element of the last
// axis selected by indices. For t:[b,n] and indices:[b], returns [b] with
// out[i] = t[i, indices[i]].
func TakeAlongLastAxis(t *Tensor, indices *Tensor) *Tensor {
	if t.Rank() < 1 {
		panic("tensor: TakeAlongLastAxis on scalar")
	}
	n := t.shape[t.Rank()-1]
	rows := t.Size() / n
	if indices.Size() != rows {
		panic(fmt.Sprintf("tensor: TakeAlongLastAxis indices size %d != rows %d", indices.Size(), rows))
	}
	out := New(t.shape[:t.Rank()-1]...)
	for r := 0; r < rows; r++ {
		k := int(indices.data[r])
		if k < 0 || k >= n {
			panic(fmt.Sprintf("tensor: TakeAlongLastAxis index %d out of range %d", k, n))
		}
		out.data[r] = t.data[r*n+k]
	}
	return out
}

// PutAlongLastAxis writes values[r] into out[r, indices[r]] of a zero tensor
// shaped like t. This is the adjoint of TakeAlongLastAxis.
func PutAlongLastAxis(shape []int, indices, values *Tensor) *Tensor {
	out := New(shape...)
	n := shape[len(shape)-1]
	rows := out.Size() / n
	for r := 0; r < rows; r++ {
		k := int(indices.data[r])
		out.data[r*n+k] = values.data[r]
	}
	return out
}

// OneHot encodes rank-1 integer-valued indices as [len, depth] one-hot rows.
func OneHot(indices *Tensor, depth int) *Tensor {
	if indices.Rank() != 1 {
		panic(fmt.Sprintf("tensor: OneHot wants rank-1 indices, got %v", indices.shape))
	}
	out := New(indices.shape[0], depth)
	for i, fi := range indices.data {
		k := int(fi)
		if k < 0 || k >= depth {
			panic(fmt.Sprintf("tensor: OneHot index %d out of range %d", k, depth))
		}
		out.data[i*depth+k] = 1
	}
	return out
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randn32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func bits32Equal(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: elem %d: %g vs %g (bits %#x vs %#x)",
				name, i, got[i], want[i], math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestFlat32KernelsMatchScalarReference pins every unrolled float32 kernel
// against a straight scalar loop over the same float32 arithmetic, across
// sizes that exercise the 4-wide unroll tails (0..9) and a longer run.
func TestFlat32KernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 33}
	for _, n := range sizes {
		a, b := randn32(rng, n), randn32(rng, n)
		for i := range b {
			if b[i] == 0 {
				b[i] = 0.5 // keep Div finite
			}
			if a[i] < 0 {
				a[i] = -a[i] // keep Log/Sqrt real; sign coverage via b
			}
		}
		dst, want := make([]float32, n), make([]float32, n)

		bins := []struct {
			name string
			k    func(dst, a, b []float32)
			f    func(x, y float32) float32
		}{
			{"Add", AddFlat32, func(x, y float32) float32 { return x + y }},
			{"Sub", SubFlat32, func(x, y float32) float32 { return x - y }},
			{"Mul", MulFlat32, func(x, y float32) float32 { return x * y }},
			{"Div", DivFlat32, func(x, y float32) float32 { return x / y }},
			{"Maximum", MaximumFlat32, max32},
			{"Minimum", MinimumFlat32, min32},
			{"GreaterEqual", GreaterEqualFlat32, func(x, y float32) float32 {
				if x >= y {
					return 1
				}
				return 0
			}},
			{"Less", LessFlat32, func(x, y float32) float32 {
				if x < y {
					return 1
				}
				return 0
			}},
			{"Equal", EqualFlat32, func(x, y float32) float32 {
				if x == y {
					return 1
				}
				return 0
			}},
		}
		for _, bk := range bins {
			bk.k(dst, a, b)
			for i := range want {
				want[i] = bk.f(a[i], b[i])
			}
			bits32Equal(t, bk.name, dst, want)
		}

		uns := []struct {
			name string
			k    func(dst, a []float32)
			f    func(x float32) float32
		}{
			{"Neg", NegFlat32, func(x float32) float32 { return -x }},
			{"Exp", ExpFlat32, func(x float32) float32 { return float32(math.Exp(float64(x))) }},
			{"Log", LogFlat32, func(x float32) float32 { return float32(math.Log(float64(x))) }},
			{"Sqrt", SqrtFlat32, func(x float32) float32 { return float32(math.Sqrt(float64(x))) }},
			{"Square", SquareFlat32, func(x float32) float32 { return x * x }},
			{"Abs", AbsFlat32, func(x float32) float32 { return float32(math.Abs(float64(x))) }},
			{"Relu", ReluFlat32, func(x float32) float32 { return max32(x, 0) }},
			{"ReluGrad", ReluGradFlat32, func(x float32) float32 {
				if x > 0 {
					return 1
				}
				return 0
			}},
			{"Tanh", TanhFlat32, func(x float32) float32 { return float32(math.Tanh(float64(x))) }},
			{"Sigmoid", SigmoidFlat32, func(x float32) float32 { return float32(sigmoidPoint(float64(x))) }},
			{"OneMinus", OneMinusFlat32, func(x float32) float32 { return -x + 1 }},
		}
		src := b // includes negatives
		for _, uk := range uns {
			in := src
			if uk.name == "Log" || uk.name == "Sqrt" {
				in = a // non-negative
			}
			uk.k(dst, in)
			for i := range want {
				want[i] = uk.f(in[i])
			}
			bits32Equal(t, uk.name, dst, want)
		}

		ScaleFlat32(dst, b, 1.5)
		for i := range want {
			want[i] = b[i] * 1.5
		}
		bits32Equal(t, "Scale", dst, want)

		AddScalarFlat32(dst, b, -0.25)
		for i := range want {
			want[i] = b[i] + -0.25
		}
		bits32Equal(t, "AddScalar", dst, want)

		ClipFlat32(dst, b, -0.5, 0.5)
		for i := range want {
			want[i] = min32(max32(b[i], -0.5), 0.5)
		}
		bits32Equal(t, "Clip", dst, want)
	}
}

// TestFused32MatchesComposition pins each fused float32 kernel against the
// composition of its constituent flat kernels — same roundings, same bits.
func TestFused32MatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 7, 64} {
		a := FromSlice32(randn32(rng, n), n)
		b := FromSlice32(randn32(rng, n), n)
		c := FromSlice32(randn32(rng, n), n)
		out := New32(n)
		tmp, tmp2 := make([]float32, n), make([]float32, n)
		const s, sb = 0.75, -1.5

		AddScaledInto32(out, a, b, s)
		ScaleFlat32(tmp, b.Data32(), s)
		AddFlat32(tmp2, a.Data32(), tmp)
		bits32Equal(t, "AddScaled", out.Data32(), tmp2)

		ScaledAddInto32(out, a, s, b)
		ScaleFlat32(tmp, a.Data32(), s)
		AddFlat32(tmp2, tmp, b.Data32())
		bits32Equal(t, "ScaledAdd", out.Data32(), tmp2)

		SubScaledInto32(out, a, b, s)
		ScaleFlat32(tmp, b.Data32(), s)
		SubFlat32(tmp2, a.Data32(), tmp)
		bits32Equal(t, "SubScaled", out.Data32(), tmp2)

		ScaleAddScaleInto32(out, a, s, b, sb)
		for i := range tmp2 {
			ta := s * a.Data32()[i]
			tb := sb * b.Data32()[i]
			tmp2[i] = ta + tb
		}
		bits32Equal(t, "ScaleAddScale", out.Data32(), tmp2)

		MulAddInto32(out, a, b, c) // a + b*c
		MulFlat32(tmp, b.Data32(), c.Data32())
		AddFlat32(tmp2, a.Data32(), tmp)
		bits32Equal(t, "MulAdd", out.Data32(), tmp2)

		AddMulInto32(out, a, b, c) // a*b + c
		MulFlat32(tmp, a.Data32(), b.Data32())
		AddFlat32(tmp2, tmp, c.Data32())
		bits32Equal(t, "AddMul", out.Data32(), tmp2)

		ReluBackwardInto32(out, a, b)
		ReluGradFlat32(tmp, b.Data32())
		MulFlat32(tmp2, a.Data32(), tmp)
		bits32Equal(t, "ReluBackward", out.Data32(), tmp2)
	}
}

// TestMatMul32MatchesNaiveBitwise pins the blocked/register-tiled float32
// matmul (and its transpose variants) against the i-k-j naive reference:
// identical k-ordering means identical bits, including odd shapes that
// exercise every tail path of the 4x4 tiles and the kBlock remainder.
func TestMatMul32MatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {4, 4, 4}, {5, 9, 6},
		{17, 23, 9}, {32, 32, 32}, {65, 1, 33}, {7, 300, 5},
	}
	for _, s := range shapes {
		a := FromSlice32(randn32(rng, s.m*s.k), s.m, s.k)
		b := FromSlice32(randn32(rng, s.k*s.n), s.k, s.n)

		want := MatMulNaive32(a, b)
		bits32Equal(t, "MatMul32", MatMul32(a, b).Data32(), want.Data32())
		bits32Equal(t, "MatMul32Into", MatMul32Into(New32(s.m, s.n), a, b).Data32(), want.Data32())

		// MatMulTransA32(x, y) computes xᵀ x y. With x = aᵀ the product is
		// a x b, so it must match the naive kernel on the untransposed a.
		at := FromSlice32(make([]float32, s.m*s.k), s.k, s.m)
		transposeInto32(at.Data32(), a.Data32(), s.m, s.k)
		bits32Equal(t, "MatMulTransA32", MatMulTransA32(at, b).Data32(), want.Data32())
		bits32Equal(t, "MatMulTransA32Into",
			MatMulTransA32Into(New32(s.m, s.n), at, b).Data32(), want.Data32())

		// a x bᵀ: MatMulTransB32(a, bt) with bt = bᵀ must equal naive(a, b).
		bt := FromSlice32(make([]float32, s.k*s.n), s.n, s.k)
		transposeInto32(bt.Data32(), b.Data32(), s.k, s.n)
		bits32Equal(t, "MatMulTransB32", MatMulTransB32(a, bt).Data32(), want.Data32())
		bits32Equal(t, "MatMulTransB32Into",
			MatMulTransB32Into(New32(s.m, s.n), a, bt).Data32(), want.Data32())
	}
}

// TestConv2D32MatchesNaive pins the tiled float32 conv forward against the
// monolithic im2col reference.
func TestConv2D32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		n, h, w, c, kh, kw, oc int
		p                      ConvParams
	}{
		{1, 5, 5, 1, 3, 3, 2, ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
		{2, 8, 6, 3, 3, 3, 4, ConvParams{StrideH: 2, StrideW: 2, PadH: 0, PadW: 0}},
		{1, 7, 7, 2, 5, 5, 3, ConvParams{StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}},
	}
	for _, cs := range cases {
		input := FromSlice32(randn32(rng, cs.n*cs.h*cs.w*cs.c), cs.n, cs.h, cs.w, cs.c)
		filter := FromSlice32(randn32(rng, cs.kh*cs.kw*cs.c*cs.oc), cs.kh, cs.kw, cs.c, cs.oc)
		got := Conv2D32(input, filter, cs.p)
		want := Conv2DNaive32(input, filter, cs.p)
		if !SameShape(got.Shape(), want.Shape()) {
			t.Fatalf("conv shape %v vs %v", got.Shape(), want.Shape())
		}
		bits32Equal(t, "Conv2D32", got.Data32(), want.Data32())
	}
}

// TestConvertRoundTrips pins the conversion API: f64→f32→f64 equals the
// float32 rounding of the source, conversions allocate fresh storage, and
// the dtype accessors panic on the wrong arm.
func TestConvertRoundTrips(t *testing.T) {
	src := FromSlice([]float64{0, -0.1, 1e-8, 3.14159265358979, -2e30, 7}, 2, 3)
	f32 := ToFloat32(src)
	if f32.Dtype() != Float32 || !SameShape(f32.Shape(), src.Shape()) {
		t.Fatalf("ToFloat32 dtype/shape: %v %v", f32.Dtype(), f32.Shape())
	}
	back := ToFloat64(f32)
	if back.Dtype() != Float64 {
		t.Fatalf("ToFloat64 dtype %v", back.Dtype())
	}
	for i, v := range src.Data() {
		if want := float64(float32(v)); back.Data()[i] != want {
			t.Fatalf("round-trip elem %d: %g want %g", i, back.Data()[i], want)
		}
	}
	// ConvertInto in both directions.
	dst32 := New32(2, 3)
	ConvertInto(dst32, src)
	bits32Equal(t, "ConvertInto32", dst32.Data32(), f32.Data32())
	dst64 := New(2, 3)
	ConvertInto(dst64, f32)
	for i := range dst64.Data() {
		if dst64.Data()[i] != back.Data()[i] {
			t.Fatalf("ConvertInto64 elem %d", i)
		}
	}
	// Wrong-arm accessors panic.
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Data on f32", func() { _ = f32.Data() })
	mustPanic("Data32 on f64", func() { _ = src.Data32() })
}

// TestArenaDtypeKeying pins that the run arena keys recycled buffers by
// dtype: a returned float32 tensor is only ever handed back through Get32,
// zero-filled, and float64 Gets never see float32 storage.
func TestArenaDtypeKeying(t *testing.T) {
	a := NewArena()
	t32 := a.Get32(4, 4)
	if t32.Dtype() != Float32 {
		t.Fatalf("Get32 dtype %v", t32.Dtype())
	}
	for i := range t32.Data32() {
		t32.Data32()[i] = 7
	}
	a.Put(t32)
	t64 := a.Get(4, 4)
	if t64.Dtype() != Float64 {
		t.Fatalf("Get after Put(f32) returned dtype %v", t64.Dtype())
	}
	r32 := a.Get32(4, 4)
	if r32.Dtype() != Float32 {
		t.Fatalf("Get32 recycled dtype %v", r32.Dtype())
	}
	for i, v := range r32.Data32() {
		if v != 0 {
			t.Fatalf("recycled f32 buffer not zero-filled at %d: %g", i, v)
		}
	}
}

// TestUnbroadcastIntoMatchesUnbroadcastTo pins the arena-friendly Into form
// (and the rank>8 indexer fallback) bit-for-bit against UnbroadcastTo.
func TestUnbroadcastIntoMatchesUnbroadcastTo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ gradShape, target []int }{
		{[]int{32, 4}, []int{1, 4}},
		{[]int{32, 4}, []int{32, 1}},
		{[]int{2, 3, 4}, []int{4}},
		{[]int{2, 3, 4}, []int{3, 1}},
		{[]int{5}, []int{}},
		{[]int{2, 1, 2, 1, 2, 1, 2, 1, 2}, []int{1, 2, 1, 2, 1, 2, 1, 2}}, // rank 9: indexer path
	}
	for _, cs := range cases {
		grad := RandNormal(rng, 0, 1, cs.gradShape...)
		want := UnbroadcastTo(grad, cs.target)
		got := UnbroadcastInto(New(cs.target...), grad)
		if !SameShape(got.Shape(), want.Shape()) {
			t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(want.Data()[i]) {
				t.Fatalf("grad %v target %v elem %d: %g vs %g", cs.gradShape, cs.target, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestAddBroadcastInPlaceMatchesAdd pins the accumulate-broadcast helper
// bit-for-bit against the generic Add(zeros, src) formulation it replaced.
func TestAddBroadcastInPlaceMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := []struct{ dst, src []int }{
		{[]int{32, 4}, []int{32, 1}},
		{[]int{32, 4}, []int{1, 4}},
		{[]int{32, 4}, []int{}},
		{[]int{2, 3, 4}, []int{3, 1}},
		{[]int{2, 1, 2, 1, 2, 1, 2, 1, 2}, []int{2, 1, 2, 1, 2, 1, 2, 1, 1}}, // rank 9: indexer path
	}
	for _, cs := range cases {
		src := RandNormal(rng, 0, 1, cs.src...)
		want := Add(New(cs.dst...), src)
		got := New(cs.dst...)
		AddBroadcastInPlace(got, src)
		for i := range got.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(want.Data()[i]) {
				t.Fatalf("dst %v src %v elem %d: %g vs %g", cs.dst, cs.src, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestBinaryBroadcastOdometerPinned pins the generic broadcast walk (the
// stack odometer that replaced the indexer tables) against an explicit
// coordinate-arithmetic reference, across suffix, column, middle-1 and
// mutual-broadcast shapes plus a rank-9 case that takes the fallback path.
func TestBinaryBroadcastOdometerPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ a, b []int }{
		{[]int{32, 4}, []int{32, 1}},
		{[]int{32, 4}, []int{1, 4}},
		{[]int{32, 1}, []int{1, 4}}, // mutual broadcast
		{[]int{2, 3, 4}, []int{3, 1}},
		{[]int{4, 1, 5}, []int{1, 6, 1}},
		{[]int{2, 1, 2, 1, 2, 1, 2, 1, 2}, []int{1, 2, 1, 2, 1, 2, 1, 2, 1}}, // rank 9
	}
	for _, cs := range cases {
		a := RandNormal(rng, 0, 1, cs.a...)
		b := RandNormal(rng, 0, 1, cs.b...)
		got := Sub(a, b) // Sub is order-sensitive: catches operand swaps too
		outShape, err := BroadcastShapes(a.Shape(), b.Shape())
		if err != nil {
			t.Fatal(err)
		}
		if !SameShape(got.Shape(), outShape) {
			t.Fatalf("shape %v want %v", got.Shape(), outShape)
		}
		// Reference: explicit coordinate decomposition per output element.
		coord := make([]int, len(outShape))
		offsetOf := func(t_ *Tensor) int {
			pad := len(outShape) - t_.Rank()
			off, stride := 0, 1
			for d := t_.Rank() - 1; d >= 0; d-- {
				c := coord[pad+d]
				if t_.Shape()[d] == 1 {
					c = 0
				}
				off += c * stride
				stride *= t_.Shape()[d]
			}
			return off
		}
		for i, v := range got.Data() {
			rem := i
			for d := len(outShape) - 1; d >= 0; d-- {
				coord[d] = rem % outShape[d]
				rem /= outShape[d]
			}
			want := a.Data()[offsetOf(a)] - b.Data()[offsetOf(b)]
			if math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("a %v b %v elem %d: %g vs %g", cs.a, cs.b, i, v, want)
			}
		}
	}
}

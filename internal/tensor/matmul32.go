package tensor

import "fmt"

// Float32 matrix multiplication — the lowered-path twin of matmul.go.
//
// The kernel structure mirrors the float64 one exactly: the same kBlock
// k-panels, the same 4-row × 4-k register tile, the same strictly
// ascending-k accumulation order, and the same row-partitioned fan-out over
// the kernel pool. Only the element type changes, which halves the bytes
// every panel moves — the point of the lowered path on memory-bandwidth-
// bound hardware. MatMulNaive32 is the serial arithmetic reference the
// blocked kernel is tested bit-for-bit (as float32) against.

// matMulDims32 validates rank-2 float32 operands for an [m,k]x[k,n] product.
func matMulDims32(name string, a, b *Tensor, ka, kb int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s wants rank-2 operands, got %v x %v", name, a.shape, b.shape))
	}
	if ka != kb {
		panic(fmt.Sprintf("tensor: %s inner dims differ: %v x %v", name, a.shape, b.shape))
	}
	if a.dtype != Float32 || b.dtype != Float32 {
		panic(fmt.Sprintf("tensor: %s wants float32 operands, got %v x %v", name, a.dtype, b.dtype))
	}
}

// MatMul32 multiplies two rank-2 float32 tensors: [m,k] x [k,n] -> [m,n].
func MatMul32(a, b *Tensor) *Tensor {
	matMulDims32("MatMul32", a, b, a.shape[1], b.shape[0])
	out := New32(a.shape[0], b.shape[1])
	matMulCore32(a.data32, b.data32, out.data32, a.shape[0], a.shape[1], b.shape[1])
	return out
}

// MatMul32Into computes a x b into out, which must be a zero-filled float32
// [m,n] tensor. It returns out.
func MatMul32Into(out, a, b *Tensor) *Tensor {
	matMulDims32("MatMul32", a, b, a.shape[1], b.shape[0])
	m, n := a.shape[0], b.shape[1]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n || out.dtype != Float32 {
		panic(fmt.Sprintf("tensor: MatMul32Into out shape %v dtype %v, want float32 [%d %d]", out.shape, out.dtype, m, n))
	}
	matMulCore32(a.data32, b.data32, out.data32, m, a.shape[1], n)
	return out
}

// MatMulTransB32 computes a x bᵀ for a:[m,k], b:[n,k] -> [m,n], transposing
// b into pooled float32 scratch like the float64 kernel.
func MatMulTransB32(a, b *Tensor) *Tensor {
	matMulDims32("MatMulTransB32", a, b, a.shape[1], b.shape[1])
	return matMulTransB32Into(New32(a.shape[0], b.shape[0]), a, b)
}

// MatMulTransB32Into computes a x bᵀ into zero-filled float32 out.
func MatMulTransB32Into(out, a, b *Tensor) *Tensor {
	matMulDims32("MatMulTransB32", a, b, a.shape[1], b.shape[1])
	m, n := a.shape[0], b.shape[0]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n || out.dtype != Float32 {
		panic(fmt.Sprintf("tensor: MatMulTransB32Into out shape %v dtype %v, want float32 [%d %d]", out.shape, out.dtype, m, n))
	}
	return matMulTransB32Into(out, a, b)
}

func matMulTransB32Into(out, a, b *Tensor) *Tensor {
	n, k := b.shape[0], b.shape[1]
	bt := getScratch32(k * n)
	transposeInto32(bt.data32, b.data32, n, k)
	matMulCore32(a.data32, bt.data32, out.data32, a.shape[0], k, n)
	putScratch(bt)
	return out
}

// MatMulTransA32 computes aᵀ x b for a:[k,m], b:[k,n] -> [m,n].
func MatMulTransA32(a, b *Tensor) *Tensor {
	matMulDims32("MatMulTransA32", a, b, a.shape[0], b.shape[0])
	return matMulTransA32Into(New32(a.shape[1], b.shape[1]), a, b)
}

// MatMulTransA32Into computes aᵀ x b into zero-filled float32 out.
func MatMulTransA32Into(out, a, b *Tensor) *Tensor {
	matMulDims32("MatMulTransA32", a, b, a.shape[0], b.shape[0])
	m, n := a.shape[1], b.shape[1]
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n || out.dtype != Float32 {
		panic(fmt.Sprintf("tensor: MatMulTransA32Into out shape %v dtype %v, want float32 [%d %d]", out.shape, out.dtype, m, n))
	}
	return matMulTransA32Into(out, a, b)
}

func matMulTransA32Into(out, a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	at := getScratch32(m * k)
	transposeInto32(at.data32, a.data32, k, m)
	matMulCore32(at.data32, b.data32, out.data32, m, k, b.shape[1])
	putScratch(at)
	return out
}

// transposeInto32 writes the [rows,cols] float32 matrix src into dst as
// [cols,rows], 32x32-tiled like transposeInto.
func transposeInto32(dst, src []float32, rows, cols int) {
	const tile = 32
	for i0 := 0; i0 < rows; i0 += tile {
		i1 := i0 + tile
		if i1 > rows {
			i1 = rows
		}
		for j0 := 0; j0 < cols; j0 += tile {
			j1 := j0 + tile
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				row := src[i*cols : i*cols+cols]
				for j := j0; j < j1; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// matMulCore32 accumulates ad([m,k]) x bd([k,n]) into od([m,n]), partitioning
// output rows across the kernel pool when the product is large enough.
func matMulCore32(ad, bd, od []float32, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	parts := matmulParts(m, k, n)
	if parts <= 1 {
		matMulRows32(ad, bd, od, 0, m, k, n)
		return
	}
	parallelFor(parts, func(p int) {
		matMulRows32(ad, bd, od, m*p/parts, m*(p+1)/parts, k, n)
	})
}

// matMulRows32 computes output rows [i0,i1) of ad x bd — the float32 twin of
// matMulRows, with identical panel/tile structure and k-ordering.
func matMulRows32(ad, bd, od []float32, i0, i1, k, n int) {
	for kb := 0; kb < k; kb += kBlock {
		ke := kb + kBlock
		if ke > k {
			ke = k
		}
		i := i0
		for ; i+4 <= i1; i += 4 {
			a0 := ad[(i+0)*k : (i+0)*k+k]
			a1 := ad[(i+1)*k : (i+1)*k+k]
			a2 := ad[(i+2)*k : (i+2)*k+k]
			a3 := ad[(i+3)*k : (i+3)*k+k]
			o0 := od[(i+0)*n : (i+0)*n+n]
			o1 := od[(i+1)*n : (i+1)*n+n]
			o2 := od[(i+2)*n : (i+2)*n+n]
			o3 := od[(i+3)*n : (i+3)*n+n]
			kk := kb
			for ; kk+4 <= ke; kk += 4 {
				b0 := bd[(kk+0)*n : (kk+0)*n+n]
				b1 := bd[(kk+1)*n : (kk+1)*n+n]
				b2 := bd[(kk+2)*n : (kk+2)*n+n]
				b3 := bd[(kk+3)*n : (kk+3)*n+n]
				a00, a01, a02, a03 := a0[kk], a0[kk+1], a0[kk+2], a0[kk+3]
				a10, a11, a12, a13 := a1[kk], a1[kk+1], a1[kk+2], a1[kk+3]
				a20, a21, a22, a23 := a2[kk], a2[kk+1], a2[kk+2], a2[kk+3]
				a30, a31, a32, a33 := a3[kk], a3[kk+1], a3[kk+2], a3[kk+3]
				for j := 0; j < n; j++ {
					bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
					s := o0[j]
					s += a00 * bv0
					s += a01 * bv1
					s += a02 * bv2
					s += a03 * bv3
					o0[j] = s
					s = o1[j]
					s += a10 * bv0
					s += a11 * bv1
					s += a12 * bv2
					s += a13 * bv3
					o1[j] = s
					s = o2[j]
					s += a20 * bv0
					s += a21 * bv1
					s += a22 * bv2
					s += a23 * bv3
					o2[j] = s
					s = o3[j]
					s += a30 * bv0
					s += a31 * bv1
					s += a32 * bv2
					s += a33 * bv3
					o3[j] = s
				}
			}
			for ; kk < ke; kk++ {
				brow := bd[kk*n : kk*n+n]
				av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
				for j := 0; j < n; j++ {
					bv := brow[j]
					o0[j] += av0 * bv
					o1[j] += av1 * bv
					o2[j] += av2 * bv
					o3[j] += av3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			orow := od[i*n : i*n+n]
			kk := kb
			for ; kk+4 <= ke; kk += 4 {
				b0 := bd[(kk+0)*n : (kk+0)*n+n]
				b1 := bd[(kk+1)*n : (kk+1)*n+n]
				b2 := bd[(kk+2)*n : (kk+2)*n+n]
				b3 := bd[(kk+3)*n : (kk+3)*n+n]
				av0, av1, av2, av3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
				for j := 0; j < n; j++ {
					s := orow[j]
					s += av0 * b0[j]
					s += av1 * b1[j]
					s += av2 * b2[j]
					s += av3 * b3[j]
					orow[j] = s
				}
			}
			for ; kk < ke; kk++ {
				brow := bd[kk*n : kk*n+n]
				av := arow[kk]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulNaive32 is the float32 i-k-j triple loop — the arithmetic reference
// the blocked float32 kernel is tested bit-for-bit against.
func MatMulNaive32(a, b *Tensor) *Tensor {
	matMulDims32("MatMulNaive32", a, b, a.shape[1], b.shape[0])
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New32(m, n)
	ad, bd, od := a.data32, b.data32, out.data32
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := bd[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	a := New(2, 3)
	if a.Rank() != 2 || a.Size() != 6 {
		t.Fatalf("rank/size = %d/%d, want 2/6", a.Rank(), a.Size())
	}
	a.Set(5, 1, 2)
	if got := a.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %g, want 5", got)
	}
	if got := a.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %g, want 0", got)
	}
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestScalarAndItem(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Item() != 3.5 {
		t.Fatalf("scalar = %v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeInference(t *testing.T) {
	a := Arange(0, 12)
	b := a.Reshape(3, -1)
	if !SameShape(b.Shape(), []int{3, 4}) {
		t.Fatalf("shape = %v", b.Shape())
	}
	if b.At(2, 3) != 11 {
		t.Fatalf("At(2,3) = %g", b.At(2, 3))
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Arange(0, 5).Reshape(2, 3)
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want []int
		err        bool
	}{
		{[]int{2, 3}, []int{3}, []int{2, 3}, false},
		{[]int{2, 1}, []int{1, 4}, []int{2, 4}, false},
		{[]int{}, []int{5}, []int{5}, false},
		{[]int{2, 3}, []int{4}, nil, true},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("BroadcastShapes(%v,%v) expected error", c.a, c.b)
			}
			continue
		}
		if err != nil || !SameShape(got, c.want) {
			t.Errorf("BroadcastShapes(%v,%v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
	}
}

func TestAddBroadcastRow(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	got := Add(a, b)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestMulBroadcastColumn(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 100}, 2, 1)
	got := Mul(a, b)
	want := FromSlice([]float64{10, 20, 300, 400}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestWhere(t *testing.T) {
	cond := FromSlice([]float64{1, 0, 1}, 3)
	a := FromSlice([]float64{10, 20, 30}, 3)
	b := FromSlice([]float64{-1, -2, -3}, 3)
	got := Where(cond, a, b)
	want := FromSlice([]float64{10, -2, 30}, 3)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestWhereBroadcastScalarBranches(t *testing.T) {
	cond := FromSlice([]float64{1, 0}, 2)
	got := Where(cond, Scalar(7), Scalar(-7))
	want := FromSlice([]float64{7, -7}, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnbroadcastToSumsOverBroadcastDims(t *testing.T) {
	grad := Ones(2, 3)
	got := UnbroadcastTo(grad, []int{3})
	want := FromSlice([]float64{2, 2, 2}, 3)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
	got2 := UnbroadcastTo(grad, []int{2, 1})
	want2 := FromSlice([]float64{3, 3}, 2, 1)
	if !got2.Equal(want2) {
		t.Fatalf("got %v", got2)
	}
}

// Property: Add(a,b) == Add(b,a) for random same-shaped tensors.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(4), 1 + rng.Intn(4)}
		a := RandNormal(rng, 0, 1, shape...)
		b := RandNormal(rng, 0, 1, shape...)
		return Add(a, b).Equal(Add(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: UnbroadcastTo(ones(broadcast(a,b)), a.shape) sums to the number
// of broadcast copies of each element.
func TestUnbroadcastMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(5), 1+rng.Intn(5)
		grad := RandNormal(rng, 0, 1, m, n)
		red := UnbroadcastTo(grad, []int{n})
		return math.Abs(Sum(red).Item()-Sum(grad).Item()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 4, 3)
	b := RandNormal(rng, 0, 1, 4, 5)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !got.AllClose(want, 1e-12) {
		t.Fatal("MatMulTransA mismatch")
	}
	c := RandNormal(rng, 0, 1, 5, 3)
	got2 := MatMulTransB(a.Reshape(4, 3), c)
	want2 := MatMul(a.Reshape(4, 3), Transpose(c))
	if !got2.AllClose(want2, 1e-12) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{5, 6}, 2)
	got := MatVec(a, v)
	want := FromSlice([]float64{17, 39}, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
	if Dot(v, v) != 61 {
		t.Fatalf("Dot = %g", Dot(v, v))
	}
}

func TestTransposePerm(t *testing.T) {
	a := Arange(0, 24).Reshape(2, 3, 4)
	b := Transpose(a, 2, 0, 1)
	if !SameShape(b.Shape(), []int{4, 2, 3}) {
		t.Fatalf("shape = %v", b.Shape())
	}
	if b.At(3, 1, 2) != a.At(1, 2, 3) {
		t.Fatal("transpose element mismatch")
	}
}

// Property: transpose twice with the same (self-inverse) perm is identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 0, 1, 1+rng.Intn(4), 1+rng.Intn(4))
		return Transpose(Transpose(a)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, 2, 3)
	b := RandNormal(rng, 0, 1, 2, 5)
	cat := Concat(1, a, b)
	if !SameShape(cat.Shape(), []int{2, 8}) {
		t.Fatalf("shape = %v", cat.Shape())
	}
	parts := Split(cat, 1, 3, 5)
	if !parts[0].Equal(a) || !parts[1].Equal(b) {
		t.Fatal("split does not invert concat")
	}
}

func TestConcatAxis0(t *testing.T) {
	a := Arange(0, 4).Reshape(2, 2)
	b := Arange(4, 8).Reshape(2, 2)
	cat := Concat(0, a, b)
	want := Arange(0, 8).Reshape(4, 2)
	if !cat.Equal(want) {
		t.Fatalf("got %v", cat)
	}
}

func TestStackUnstack(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	s := Stack(a, b)
	if !SameShape(s.Shape(), []int{2, 2}) {
		t.Fatalf("shape = %v", s.Shape())
	}
	us := Unstack(s)
	if !us[0].Equal(a) || !us[1].Equal(b) {
		t.Fatal("unstack mismatch")
	}
}

func TestSliceRowsAndRow(t *testing.T) {
	a := Arange(0, 12).Reshape(4, 3)
	s := SliceRows(a, 1, 3)
	want := Arange(3, 9).Reshape(2, 3)
	if !s.Equal(want) {
		t.Fatalf("got %v", s)
	}
	r := Row(a, 2)
	if !r.Equal(Arange(6, 9)) {
		t.Fatalf("row = %v", r)
	}
}

func TestExpandSqueeze(t *testing.T) {
	a := Arange(0, 6).Reshape(2, 3)
	e := ExpandDims(a, 1)
	if !SameShape(e.Shape(), []int{2, 1, 3}) {
		t.Fatalf("shape = %v", e.Shape())
	}
	s := Squeeze(e, 1)
	if !SameShape(s.Shape(), []int{2, 3}) {
		t.Fatalf("shape = %v", s.Shape())
	}
}

func TestTile(t *testing.T) {
	a := Arange(0, 2).Reshape(1, 2)
	got := Tile(a, 3)
	want := FromSlice([]float64{0, 1, 0, 1, 0, 1}, 3, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestSumMeanMaxAxes(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := SumAxis(a, 0, false); !got.Equal(FromSlice([]float64{5, 7, 9}, 3)) {
		t.Fatalf("SumAxis0 = %v", got)
	}
	if got := SumAxis(a, 1, false); !got.Equal(FromSlice([]float64{6, 15}, 2)) {
		t.Fatalf("SumAxis1 = %v", got)
	}
	if got := SumAxis(a, 1, true); !SameShape(got.Shape(), []int{2, 1}) {
		t.Fatalf("keepdims shape = %v", got.Shape())
	}
	if got := MeanAxis(a, 1, false); !got.Equal(FromSlice([]float64{2, 5}, 2)) {
		t.Fatalf("MeanAxis = %v", got)
	}
	if got := MaxAxis(a, 0, false); !got.Equal(FromSlice([]float64{4, 5, 6}, 3)) {
		t.Fatalf("MaxAxis = %v", got)
	}
	if got := MinAxis(a, 1, false); !got.Equal(FromSlice([]float64{1, 4}, 2)) {
		t.Fatalf("MinAxis = %v", got)
	}
}

func TestArgMaxAxis(t *testing.T) {
	a := FromSlice([]float64{1, 9, 3, 8, 2, 7}, 2, 3)
	got := ArgMaxAxis(a, 1)
	want := FromSlice([]float64{1, 0}, 2)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 0, 3, 4, 5)
	s := Softmax(a)
	for r := 0; r < 4; r++ {
		sum := 0.0
		for j := 0; j < 5; j++ {
			sum += s.At(r, j)
			if s.At(r, j) < 0 {
				t.Fatal("negative softmax")
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 0, 2, 3, 4)
	got := LogSoftmax(a)
	want := Log(Softmax(a))
	if !got.AllClose(want, 1e-9) {
		t.Fatal("logsoftmax mismatch")
	}
}

func TestSoftmaxStableUnderShift(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 1002}, 1, 3)
	s := Softmax(a)
	if math.IsNaN(s.At(0, 0)) || math.IsInf(s.At(0, 2), 0) {
		t.Fatal("softmax overflow")
	}
}

func TestGatherRows(t *testing.T) {
	a := Arange(0, 12).Reshape(4, 3)
	idx := FromSlice([]float64{2, 0, 2}, 3)
	got := GatherRows(a, idx)
	want := FromSlice([]float64{6, 7, 8, 0, 1, 2, 6, 7, 8}, 3, 3)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestScatterAddRowsIsAdjointOfGather(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	table := RandNormal(rng, 0, 1, 4, 3)
	idx := FromSlice([]float64{1, 1, 3}, 3)
	g := GatherRows(table, idx)
	// <gather(x), y> == <x, scatter(y)>
	y := RandNormal(rng, 0, 1, 3, 3)
	scattered := New(4, 3)
	ScatterAddRows(scattered, y, idx)
	lhs := Dot(g.Flatten(), y.Flatten())
	rhs := Dot(table.Flatten(), scattered.Flatten())
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %g vs %g", lhs, rhs)
	}
}

func TestTakePutAlongLastAxisAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := RandNormal(rng, 0, 1, 5, 4)
	idx := FromSlice([]float64{0, 3, 1, 2, 2}, 5)
	taken := TakeAlongLastAxis(q, idx)
	if taken.Size() != 5 {
		t.Fatalf("size = %d", taken.Size())
	}
	for r := 0; r < 5; r++ {
		if taken.Data()[r] != q.At(r, int(idx.Data()[r])) {
			t.Fatal("take mismatch")
		}
	}
	v := RandNormal(rng, 0, 1, 5)
	put := PutAlongLastAxis([]int{5, 4}, idx, v)
	lhs := Dot(taken, v)
	rhs := Dot(q.Flatten(), put.Flatten())
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %g vs %g", lhs, rhs)
	}
}

func TestOneHot(t *testing.T) {
	idx := FromSlice([]float64{2, 0}, 2)
	got := OneHot(idx, 3)
	want := FromSlice([]float64{0, 0, 1, 1, 0, 0}, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("got %v", got)
	}
}

func TestClipScaleNeg(t *testing.T) {
	a := FromSlice([]float64{-5, 0.5, 5}, 3)
	if got := Clip(a, -1, 1); !got.Equal(FromSlice([]float64{-1, 0.5, 1}, 3)) {
		t.Fatalf("clip = %v", got)
	}
	if got := Scale(a, 2); !got.Equal(FromSlice([]float64{-10, 1, 10}, 3)) {
		t.Fatalf("scale = %v", got)
	}
	if got := Neg(a); !got.Equal(FromSlice([]float64{5, -0.5, -5}, 3)) {
		t.Fatalf("neg = %v", got)
	}
}

func TestReluAndGrad(t *testing.T) {
	a := FromSlice([]float64{-1, 0, 2}, 3)
	if got := Relu(a); !got.Equal(FromSlice([]float64{0, 0, 2}, 3)) {
		t.Fatalf("relu = %v", got)
	}
	if got := ReluGrad(a); !got.Equal(FromSlice([]float64{0, 0, 1}, 3)) {
		t.Fatalf("relugrad = %v", got)
	}
}

func TestComparisonOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{2, 2, 2}, 3)
	if got := GreaterEqual(a, b); !got.Equal(FromSlice([]float64{0, 1, 1}, 3)) {
		t.Fatalf("ge = %v", got)
	}
	if got := Less(a, b); !got.Equal(FromSlice([]float64{1, 0, 0}, 3)) {
		t.Fatalf("lt = %v", got)
	}
	if got := EqualElems(a, b); !got.Equal(FromSlice([]float64{0, 1, 0}, 3)) {
		t.Fatalf("eq = %v", got)
	}
}

func TestRandomShapesAndRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := RandUniform(rng, -2, 3, 100)
	for _, v := range u.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %g out of range", v)
		}
	}
	g := GlorotUniform(rng, 10, 10, 10, 10)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range g.Data() {
		if math.Abs(v) > limit {
			t.Fatalf("glorot sample %g beyond limit %g", v, limit)
		}
	}
	p := RandPerm(rng, 10)
	seen := map[int]bool{}
	for _, v := range p.Data() {
		seen[int(v)] = true
	}
	if len(seen) != 10 {
		t.Fatal("perm not a permutation")
	}
}

func TestSliceColsPadColsAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := RandNormal(rng, 0, 1, 4, 6)
	s := SliceCols(x, 2, 5)
	if !SameShape(s.Shape(), []int{4, 3}) {
		t.Fatalf("shape = %v", s.Shape())
	}
	y := RandNormal(rng, 0, 1, 4, 3)
	p := PadCols(y, 2, 6)
	lhs := Dot(s.Flatten(), y.Flatten())
	rhs := Dot(x.Flatten(), p.Flatten())
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %g vs %g", lhs, rhs)
	}
}

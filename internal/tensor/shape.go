package tensor

import "fmt"

// Transpose permutes the tensor's dimensions by perm. An empty perm reverses
// all dimensions (matrix transpose for rank 2).
func Transpose(a *Tensor, perm ...int) *Tensor {
	r := a.Rank()
	if len(perm) == 0 {
		perm = make([]int, r)
		for i := range perm {
			perm[i] = r - 1 - i
		}
	}
	if len(perm) != r {
		panic(fmt.Sprintf("tensor: Transpose perm %v does not match rank %d", perm, r))
	}
	seen := make([]bool, r)
	outShape := make([]int, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("tensor: invalid perm %v for rank %d", perm, r))
		}
		seen[p] = true
		outShape[i] = a.shape[p]
	}
	out := New(outShape...)
	if out.Size() == 0 {
		return out
	}
	inStrides := Strides(a.shape)
	// Stride of output dim i in the input layout.
	srcStride := make([]int, r)
	for i, p := range perm {
		srcStride[i] = inStrides[p]
	}
	idx := make([]int, r)
	src := 0
	for o := 0; o < out.Size(); o++ {
		out.data[o] = a.data[src]
		for d := r - 1; d >= 0; d-- {
			idx[d]++
			src += srcStride[d]
			if idx[d] < outShape[d] {
				break
			}
			src -= idx[d] * srcStride[d]
			idx[d] = 0
		}
	}
	return out
}

// Concat concatenates tensors along the given axis. All inputs must agree on
// every other dimension.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	r := ts[0].Rank()
	if axis < 0 {
		axis += r
	}
	outShape := append([]int(nil), ts[0].shape...)
	outShape[axis] = 0
	for _, t := range ts {
		if t.Rank() != r {
			panic("tensor: Concat rank mismatch")
		}
		for d := 0; d < r; d++ {
			if d != axis && t.shape[d] != ts[0].shape[d] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on axis %d",
					t.shape, ts[0].shape, d))
			}
		}
		outShape[axis] += t.shape[axis]
	}
	out := New(outShape...)
	// outer = product of dims before axis; inner = product after.
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	for d := axis + 1; d < r; d++ {
		inner *= outShape[d]
	}
	rowLen := outShape[axis] * inner
	off := 0
	for _, t := range ts {
		tRow := t.shape[axis] * inner
		for o := 0; o < outer; o++ {
			copy(out.data[o*rowLen+off:o*rowLen+off+tRow], t.data[o*tRow:(o+1)*tRow])
		}
		off += tRow
	}
	return out
}

// Split divides t along axis into len(sizes) tensors whose axis dims are the
// given sizes (they must sum to t's axis dim).
func Split(t *Tensor, axis int, sizes ...int) []*Tensor {
	r := t.Rank()
	if axis < 0 {
		axis += r
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != t.shape[axis] {
		panic(fmt.Sprintf("tensor: Split sizes %v do not sum to dim %d of %v", sizes, axis, t.shape))
	}
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= t.shape[d]
	}
	for d := axis + 1; d < r; d++ {
		inner *= t.shape[d]
	}
	rowLen := t.shape[axis] * inner
	outs := make([]*Tensor, len(sizes))
	off := 0
	for i, s := range sizes {
		shape := append([]int(nil), t.shape...)
		shape[axis] = s
		o := New(shape...)
		seg := s * inner
		for ou := 0; ou < outer; ou++ {
			copy(o.data[ou*seg:(ou+1)*seg], t.data[ou*rowLen+off:ou*rowLen+off+seg])
		}
		outs[i] = o
		off += s * inner
	}
	return outs
}

// Stack stacks equal-shaped tensors along a new leading axis.
func Stack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	shape := append([]int{len(ts)}, ts[0].shape...)
	out := New(shape...)
	n := ts[0].Size()
	for i, t := range ts {
		if !SameShape(t.shape, ts[0].shape) {
			panic("tensor: Stack shape mismatch")
		}
		copy(out.data[i*n:(i+1)*n], t.data)
	}
	return out
}

// Unstack splits t along its leading axis into t.Dim(0) tensors.
func Unstack(t *Tensor) []*Tensor {
	if t.Rank() == 0 {
		panic("tensor: Unstack of scalar")
	}
	n := t.shape[0]
	rest := t.shape[1:]
	size := NumElems(rest)
	outs := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		d := make([]float64, size)
		copy(d, t.data[i*size:(i+1)*size])
		outs[i] = FromSlice(d, rest...)
	}
	return outs
}

// SliceRows returns rows [lo,hi) along the leading axis.
func SliceRows(t *Tensor, lo, hi int) *Tensor {
	if t.Rank() == 0 || lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) invalid for %v", lo, hi, t.shape))
	}
	rest := t.shape[1:]
	size := NumElems(rest)
	shape := append([]int{hi - lo}, rest...)
	d := make([]float64, (hi-lo)*size)
	copy(d, t.data[lo*size:hi*size])
	return FromSlice(d, shape...)
}

// Row returns row i of the leading axis as a tensor of the remaining shape.
func Row(t *Tensor, i int) *Tensor {
	return SliceRows(t, i, i+1).Reshape(t.shape[1:]...)
}

// ExpandDims inserts a size-1 dimension at axis.
func ExpandDims(t *Tensor, axis int) *Tensor {
	r := t.Rank()
	if axis < 0 {
		axis += r + 1
	}
	shape := make([]int, 0, r+1)
	shape = append(shape, t.shape[:axis]...)
	shape = append(shape, 1)
	shape = append(shape, t.shape[axis:]...)
	return t.Reshape(shape...)
}

// Squeeze removes all size-1 dimensions (or only axis if given).
func Squeeze(t *Tensor, axes ...int) *Tensor {
	drop := map[int]bool{}
	for _, a := range axes {
		if a < 0 {
			a += t.Rank()
		}
		if t.shape[a] != 1 {
			panic(fmt.Sprintf("tensor: Squeeze axis %d of %v is not 1", a, t.shape))
		}
		drop[a] = true
	}
	var shape []int
	for i, d := range t.shape {
		if len(axes) == 0 {
			if d != 1 {
				shape = append(shape, d)
			}
		} else if !drop[i] {
			shape = append(shape, d)
		}
	}
	return t.Reshape(shape...)
}

// Tile repeats t reps times along the leading axis.
func Tile(t *Tensor, reps int) *Tensor {
	if t.Rank() == 0 {
		panic("tensor: Tile of scalar")
	}
	shape := append([]int(nil), t.shape...)
	shape[0] *= reps
	out := New(shape...)
	for i := 0; i < reps; i++ {
		copy(out.data[i*t.Size():(i+1)*t.Size()], t.data)
	}
	return out
}

// SliceCols returns columns [lo, hi) of the last axis.
func SliceCols(t *Tensor, lo, hi int) *Tensor {
	r := t.Rank()
	if r == 0 {
		panic("tensor: SliceCols on scalar")
	}
	n := t.shape[r-1]
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) invalid for %v", lo, hi, t.shape))
	}
	rows := t.Size() / n
	w := hi - lo
	out := make([]float64, rows*w)
	for i := 0; i < rows; i++ {
		copy(out[i*w:(i+1)*w], t.data[i*n+lo:i*n+hi])
	}
	shape := append([]int(nil), t.shape[:r-1]...)
	shape = append(shape, w)
	return FromSlice(out, shape...)
}

// PadCols scatters src into columns [lo, lo+srcWidth) of a zero tensor with
// `total` columns (the adjoint of SliceCols).
func PadCols(src *Tensor, lo, total int) *Tensor {
	r := src.Rank()
	w := src.shape[r-1]
	rows := src.Size() / w
	out := make([]float64, rows*total)
	for i := 0; i < rows; i++ {
		copy(out[i*total+lo:i*total+lo+w], src.data[i*w:(i+1)*w])
	}
	shape := append([]int(nil), src.shape[:r-1]...)
	shape = append(shape, total)
	return FromSlice(out, shape...)
}

// ShardRows returns shard i of k along the leading axis: rows
// [floor(i·n/k), floor((i+1)·n/k)).
func ShardRows(t *Tensor, i, k int) *Tensor {
	n := t.shape[0]
	lo, hi := i*n/k, (i+1)*n/k
	return SliceRows(t, lo, hi)
}

// PadRowsShard scatters a shard's gradient back into a zero tensor with
// `total` rows (the adjoint of ShardRows).
func PadRowsShard(src *Tensor, i, k, total int) *Tensor {
	lo := i * total / k
	rest := src.shape[1:]
	size := NumElems(rest)
	shape := append([]int{total}, rest...)
	out := New(shape...)
	copy(out.data[lo*size:lo*size+src.Size()], src.data)
	return out
}

package tensor

// Float32 forward convolution — the lowered-path twin of Conv2D. It reuses
// the same tiled im2col pipeline (panel sizing, scratch accounting, worker
// fan-out) with float32 panels and the float32 matmul core. Only the forward
// pass is lowered: training stays float64, so a lowered plan that reaches a
// conv backward op falls back to the generic convert-run-convert path in
// internal/graph.

// im2colRows32 is im2colRows for a float32 NHWC input.
func im2colRows32(dst []float32, input *Tensor, r0, r1, kh, kw int, p ConvParams) {
	h, w, c := input.shape[1], input.shape[2], input.shape[3]
	oh, ow := p.ConvOutDims(h, w, kh, kw)
	ckk := kh * kw * c
	for row := r0; row < r1; row++ {
		b := row / (oh * ow)
		rem := row - b*oh*ow
		oy := rem / ow
		ox := rem - oy*ow
		iy0 := oy*p.StrideH - p.PadH
		ix0 := ox*p.StrideW - p.PadW
		d := dst[(row-r0)*ckk : (row-r0+1)*ckk]
		imgBase := b * h * w * c
		di := 0
		for ky := 0; ky < kh; ky++ {
			iy := iy0 + ky
			if iy < 0 || iy >= h {
				clear(d[di : di+kw*c])
				di += kw * c
				continue
			}
			rowBase := imgBase + iy*w*c
			for kx := 0; kx < kw; kx++ {
				ix := ix0 + kx
				if ix < 0 || ix >= w {
					clear(d[di : di+c])
					di += c
					continue
				}
				copy(d[di:di+c], input.data32[rowBase+ix*c:rowBase+ix*c+c])
				di += c
			}
		}
	}
}

func convScratchGet32(n int) *Tensor {
	cur := convScratchCur.Add(int64(n))
	for {
		peak := convScratchPeak.Load()
		if cur <= peak || convScratchPeak.CompareAndSwap(peak, cur) {
			break
		}
	}
	return getScratch32(n)
}

func convScratchPut32(t *Tensor) {
	convScratchCur.Add(-int64(len(t.data32)))
	putScratch(t)
}

// Conv2D32 computes an NHWC float32 convolution: input [N,H,W,C] * filter
// [KH,KW,C,OC] -> [N,OH,OW,OC], via the same tiled im2col pipeline as
// Conv2D. Both operands must be float32.
func Conv2D32(input, filter *Tensor, p ConvParams) *Tensor {
	n, _, _, _, kh, kw, oc, oh, ow := convDims(input, filter, p)
	if input.dtype != Float32 || filter.dtype != Float32 {
		panic("tensor: Conv2D32 wants float32 operands")
	}
	ckk := kh * kw * input.shape[3]
	rows := n * oh * ow
	out := New32(n, oh, ow, oc)
	if rows == 0 || oc == 0 {
		return out
	}
	fd := filter.data32
	od := out.data32
	panel0 := convPanelFor(rows, 1)
	parts := convParts(rows, ckk, oc, panel0)
	panel := convPanelFor(rows, parts)
	parallelFor(parts, func(pt int) {
		r0, r1 := rows*pt/parts, rows*(pt+1)/parts
		if r0 == r1 {
			return
		}
		pr := panel
		if pr > r1-r0 {
			pr = r1 - r0
		}
		scratch := convScratchGet32(pr * ckk)
		for s := r0; s < r1; s += pr {
			e := s + pr
			if e > r1 {
				e = r1
			}
			im2colRows32(scratch.data32, input, s, e, kh, kw, p)
			matMulRows32(scratch.data32, fd, od[s*oc:e*oc], 0, e-s, ckk, oc)
		}
		convScratchPut32(scratch)
	})
	return out
}

// Conv2DNaive32 is the float32 full-materialization reference: monolithic
// im2col fed through the naive float32 matmul.
func Conv2DNaive32(input, filter *Tensor, p ConvParams) *Tensor {
	n, _, _, c, kh, kw, oc, oh, ow := convDims(input, filter, p)
	rows := n * oh * ow
	ckk := kh * kw * c
	cols := New32(rows, ckk)
	im2colRows32(cols.data32, input, 0, rows, kh, kw, p)
	fmat := filter.Reshape(ckk, oc)
	out := MatMulNaive32(cols, fmat)
	return out.Reshape(n, oh, ow, oc)
}

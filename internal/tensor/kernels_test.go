package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// bitsEq compares tensors bit-for-bit (distinguishes ±0, matches NaN bit
// patterns) — the contract the blocked/parallel/fused kernels make against
// the naive references.
func bitsEq(a, b *Tensor) bool {
	if !SameShape(a.shape, b.shape) {
		return false
	}
	for i := range a.data {
		if math.Float64bits(a.data[i]) != math.Float64bits(b.data[i]) {
			return false
		}
	}
	return true
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return t
}

// TestMatMulDifferential: the blocked (and, above threshold, parallel)
// kernels must agree bit-for-bit with the naive triple-loop references
// across random shapes including size-1 and empty dims.
func TestMatMulDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{0, 1, 2, 3, 5, 8, 17, 33, 64, 100}
	for trial := 0; trial < 200; trial++ {
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		if got, want := MatMul(a, b), MatMulNaive(a, b); !bitsEq(got, want) {
			t.Fatalf("MatMul [%d,%d]x[%d,%d] diverged from naive", m, k, k, n)
		}
		at := randTensor(rng, k, m)
		if got, want := MatMulTransA(at, b), MatMulTransANaive(at, b); !bitsEq(got, want) {
			t.Fatalf("MatMulTransA [%d,%d]x[%d,%d] diverged from naive", k, m, k, n)
		}
		bt := randTensor(rng, n, k)
		if got, want := MatMulTransB(a, bt), MatMulTransBNaive(a, bt); !bitsEq(got, want) {
			t.Fatalf("MatMulTransB [%d,%d]x[%d,%d] diverged from naive", m, k, n, k)
		}
	}
}

// TestMatMulParallelDifferential forces the parallel path (sizes above the
// threshold, parallelism 4) and checks bit-identity with the naive kernel,
// concurrently from several goroutines so -race exercises the worker pool.
func TestMatMulParallelDifferential(t *testing.T) {
	old := KernelParallelism()
	SetKernelParallelism(4)
	defer SetKernelParallelism(old)

	rng := rand.New(rand.NewSource(11))
	const m, k, n = 96, 80, 70 // m*k*n > matmulParallelThreshold
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	want := MatMulNaive(a, b)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := MatMul(a, b); !bitsEq(got, want) {
					errs <- "parallel MatMul diverged from naive"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestMatMulNonFinite: with the zero-skip branch removed, 0·Inf inside a
// product is NaN, matching the IEEE semantics of the naive reference.
func TestMatMulNonFinite(t *testing.T) {
	a := FromSlice([]float64{0, 1}, 1, 2)
	b := FromSlice([]float64{math.Inf(1), 2, 3, 4}, 2, 2)
	got := MatMul(a, b)
	if !math.IsNaN(got.data[0]) {
		t.Fatalf("0*Inf + 1*3 = %v, want NaN", got.data[0])
	}
	if !bitsEq(got, MatMulNaive(a, b)) {
		t.Fatal("nonfinite MatMul diverged from naive")
	}
}

// TestElementwiseFlatDifferential: every flat fast path must agree
// bit-for-bit with the generic closure path, across shapes with empty and
// size-1 dims.
func TestElementwiseFlatDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{}, {1}, {7}, {0}, {3, 1}, {1, 5}, {4, 9}, {2, 3, 4}}
	bins := []struct {
		name string
		fast func(a, b *Tensor) *Tensor
		ref  func(x, y float64) float64
	}{
		{"Add", Add, func(x, y float64) float64 { return x + y }},
		{"Sub", Sub, func(x, y float64) float64 { return x - y }},
		{"Mul", Mul, func(x, y float64) float64 { return x * y }},
		{"Div", Div, func(x, y float64) float64 { return x / y }},
		{"Maximum", Maximum, math.Max},
		{"Minimum", Minimum, math.Min},
		{"GreaterEqual", GreaterEqual, func(x, y float64) float64 {
			if x >= y {
				return 1
			}
			return 0
		}},
		{"Less", Less, func(x, y float64) float64 {
			if x < y {
				return 1
			}
			return 0
		}},
		{"EqualElems", EqualElems, func(x, y float64) float64 {
			if x == y {
				return 1
			}
			return 0
		}},
	}
	for _, shape := range shapes {
		a := randTensor(rng, shape...)
		b := randTensor(rng, shape...)
		for _, op := range bins {
			if got, want := op.fast(a, b), binary(a, b, op.ref); !bitsEq(got, want) {
				t.Fatalf("%s flat path diverged on shape %v", op.name, shape)
			}
		}
	}
	// Broadcast shapes still route through the generic path.
	a := randTensor(rng, 4, 1)
	b := randTensor(rng, 1, 5)
	if got, want := Add(a, b), binary(a, b, func(x, y float64) float64 { return x + y }); !bitsEq(got, want) {
		t.Fatal("broadcast Add diverged")
	}
}

// TestFusedKernelsDifferential: fused compound kernels must be bit-identical
// to their unfused compositions.
func TestFusedKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		shape := [][]int{{1}, {16}, {3, 7}, {0}, {2, 1, 9}}[rng.Intn(5)]
		a := randTensor(rng, shape...)
		b := randTensor(rng, shape...)
		c := randTensor(rng, shape...)
		s := rng.NormFloat64()
		s2 := rng.NormFloat64()

		if got, want := AddScaled(a, b, s), Add(a, Scale(b, s)); !bitsEq(got, want) {
			t.Fatalf("AddScaled diverged on %v", shape)
		}
		if got, want := ScaledAdd(a, s, b), Add(Scale(a, s), b); !bitsEq(got, want) {
			t.Fatalf("ScaledAdd diverged on %v", shape)
		}
		if got, want := SubScaled(a, b, s), Sub(a, Scale(b, s)); !bitsEq(got, want) {
			t.Fatalf("SubScaled diverged on %v", shape)
		}
		if got, want := ScaleAddScale(a, s, b, s2), Add(Scale(a, s), Scale(b, s2)); !bitsEq(got, want) {
			t.Fatalf("ScaleAddScale diverged on %v", shape)
		}
		if got, want := MulAdd(a, b, c), Add(a, Mul(b, c)); !bitsEq(got, want) {
			t.Fatalf("MulAdd diverged on %v", shape)
		}
		if got, want := AddMul(a, b, c), Add(Mul(a, b), c); !bitsEq(got, want) {
			t.Fatalf("AddMul diverged on %v", shape)
		}
		if got, want := ReluBackward(a, b), Mul(a, ReluGrad(b)); !bitsEq(got, want) {
			t.Fatalf("ReluBackward diverged on %v", shape)
		}
		dst1, dst2 := a.Clone(), a.Clone()
		AxpyInPlace(dst1, s, b)
		AddInPlace(dst2, Scale(b, s))
		if !bitsEq(dst1, dst2) {
			t.Fatalf("AxpyInPlace diverged on %v", shape)
		}
	}
}

// TestReluBackwardSignedZero: gy*mask must preserve -0 for negative gy
// against a zero mask, exactly like the unfused Mul.
func TestReluBackwardSignedZero(t *testing.T) {
	gy := FromSlice([]float64{-2, 2, -2}, 3)
	x := FromSlice([]float64{-1, -1, 1}, 3)
	got := ReluBackward(gy, x)
	if math.Float64bits(got.data[0]) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("ReluBackward(-2, mask 0) = %v bits %x, want -0", got.data[0], math.Float64bits(got.data[0]))
	}
	if !bitsEq(got, Mul(gy, ReluGrad(x))) {
		t.Fatal("ReluBackward diverged from Mul(gy, ReluGrad(x)) on signed zero")
	}
}

// TestSigmoidStability: table test for the sign-split form at ±40 and ±1000.
// The naive 1/(1+exp(-x)) overflows exp for x = -1000 and returns exactly 0;
// the sign-split form returns the correctly rounded (subnormal) value.
func TestSigmoidStability(t *testing.T) {
	cases := []struct {
		x    float64
		want float64
	}{
		{40, 1 / (1 + math.Exp(-40))},              // ≈ 1 - 4.25e-18
		{-40, math.Exp(-40) / (1 + math.Exp(-40))}, // ≈ 4.25e-18
		{1000, 1},
		{-1000, math.Exp(-1000)}, // subnormal ≈ 5e-435 is below double range: 0, but computed without Inf
		{0, 0.5},
		{-710, math.Exp(-710) / (1 + math.Exp(-710))}, // naive form overflows exp(710)
	}
	for _, c := range cases {
		got := Sigmoid(Scalar(c.x)).Item()
		if math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("Sigmoid(%g) = %g, want %g", c.x, got, c.want)
		}
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Errorf("Sigmoid(%g) = %g out of [0,1]", c.x, got)
		}
	}
	// Monotonicity across the splice point.
	prev := -1.0
	for x := -50.0; x <= 50; x += 0.5 {
		v := sigmoidPoint(x)
		if v < prev {
			t.Fatalf("Sigmoid not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

// TestArenaReuse: Get/Put recycles buffers, zeroes recycled tensors, and
// serves mismatched sizes from the nearest bucket.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 8)
	for i := range t1.data {
		t1.data[i] = 42
	}
	a.Put(t1)
	t2 := a.Get(31) // fits the same 32-element bucket
	for i, v := range t2.data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}
	if len(t2.data) != 31 || t2.Rank() != 1 {
		t.Fatalf("recycled tensor shape %v len %d", t2.shape, len(t2.data))
	}
	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so cycle enough times that at least one reuse must land.
	for i := 0; i < 64; i++ {
		a.Put(a.Get(16))
	}
	gets, hits := a.Stats()
	if gets < 2 || hits < 1 {
		t.Fatalf("arena stats gets=%d hits=%d, want a reuse", gets, hits)
	}
	// nil arena degrades to plain allocation.
	var nilA *Arena
	if got := nilA.Get(3); got.Size() != 3 {
		t.Fatal("nil arena Get failed")
	}
	nilA.Put(t2)
	// Zero-size tensors bypass pooling.
	z := a.Get(0, 5)
	if z.Size() != 0 {
		t.Fatal("empty Get")
	}
	a.Put(New()) // scalar: cap 1 pools at bucket 0
	if s := a.Get(); s.Item() != 0 {
		t.Fatal("recycled scalar not zeroed")
	}
}

// TestArenaConcurrent hammers one arena from many goroutines under -race.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(100)
				tt := a.Get(n)
				for j := range tt.data {
					if tt.data[j] != 0 {
						panic("dirty buffer")
					}
					tt.data[j] = float64(j)
				}
				a.Put(tt)
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestSetKernelParallelism: the setter clamps and restores defaults.
func TestSetKernelParallelism(t *testing.T) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(3)
	if got := KernelParallelism(); got != 3 {
		t.Fatalf("KernelParallelism = %d, want 3", got)
	}
	SetKernelParallelism(0)
	if got := KernelParallelism(); got != runtime.NumCPU() {
		t.Fatalf("KernelParallelism = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

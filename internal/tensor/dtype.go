package tensor

import "fmt"

// Dtype selects a tensor's storage arm. Float64 is the default everywhere —
// agents, optimizers, replay, and the public kernel API all stay float64.
// Float32 tensors exist only on the lowered execution path (internal/graph
// plan lowering): weights and feeds are converted once at the plan boundary,
// the *32 kernel variants run in between at half the memory bandwidth, and
// fetches are converted back before anyone outside the plan sees them.
type Dtype uint8

const (
	// Float64 is the default dense storage.
	Float64 Dtype = iota
	// Float32 is the lowered half-bandwidth storage.
	Float32
)

// String names the dtype.
func (d Dtype) String() string {
	if d == Float32 {
		return "float32"
	}
	return "float64"
}

// Dtype reports the tensor's storage dtype.
func (t *Tensor) Dtype() Dtype { return t.dtype }

// Data32 returns the underlying float32 storage. Mutating it mutates the
// tensor. Panics on a float64 tensor, mirroring Data().
func (t *Tensor) Data32() []float32 {
	if t.dtype != Float32 {
		panic(fmt.Sprintf("tensor: Data32() on float64 tensor %v; use Data() or ToFloat32", t.shape))
	}
	return t.data32
}

// New32 returns a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{shape: append([]int(nil), shape...), dtype: Float32, data32: make([]float32, n)}
}

// FromSlice32 wraps data in a float32 tensor of the given shape. The slice is
// used directly (not copied).
func FromSlice32(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{shape: append([]int(nil), shape...), dtype: Float32, data32: data}
}

// ToFloat32 returns a freshly allocated float32 copy of t (or a plain clone
// if t is already float32).
func ToFloat32(t *Tensor) *Tensor {
	if t.dtype == Float32 {
		return t.Clone()
	}
	out := New32(t.shape...)
	for i, v := range t.data {
		out.data32[i] = float32(v)
	}
	return out
}

// ToFloat64 returns a freshly allocated float64 copy of t (or a plain clone
// if t is already float64).
func ToFloat64(t *Tensor) *Tensor {
	if t.dtype != Float32 {
		return t.Clone()
	}
	out := New(t.shape...)
	for i, v := range t.data32 {
		out.data[i] = float64(v)
	}
	return out
}

// ConvertInto copies src's elements into dst, converting between dtypes as
// needed. dst and src must have equal element counts; dst's shape and dtype
// are preserved. This is the staging primitive the lowered executor uses to
// reuse feed/fetch conversion buffers across Run calls.
func ConvertInto(dst, src *Tensor) {
	if dst.Size() != src.Size() {
		panic(fmt.Sprintf("tensor: ConvertInto size mismatch %v vs %v", dst.shape, src.shape))
	}
	switch {
	case dst.dtype == src.dtype:
		dst.CopyFrom(src)
	case dst.dtype == Float32:
		for i, v := range src.data {
			dst.data32[i] = float32(v)
		}
	default:
		for i, v := range src.data32 {
			dst.data[i] = float64(v)
		}
	}
}

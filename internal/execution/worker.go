// Package execution implements sample-collection workers: the RLgraph-style
// vectorized worker that batches acting, episode accounting and
// post-processing (n-step returns, worker-side priorities) to minimize
// executor calls — the design the paper credits for its throughput wins over
// RLlib's policy evaluators (§5.1).
package execution

import (
	"fmt"

	"rlgraph/internal/agents"
	"rlgraph/internal/envs"
	"rlgraph/internal/tensor"
)

// Batch is a collected set of (possibly n-step) transitions.
type Batch struct {
	S, A, R, NS, T *tensor.Tensor
	// Prio holds worker-side initial priorities (nil when not computed).
	Prio *tensor.Tensor
	// Frames counts environment frames including frame-skip.
	Frames int
	// Steps counts worker act/step iterations.
	Steps int
}

// Len returns the number of transitions.
func (b *Batch) Len() int {
	if b == nil || b.A == nil {
		return 0
	}
	return b.A.Size()
}

// Concat merges batches (used by replay shards).
func Concat(batches ...*Batch) *Batch {
	var ss, as, rs, nss, ts []*tensor.Tensor
	frames, steps := 0, 0
	for _, b := range batches {
		if b.Len() == 0 {
			continue
		}
		ss = append(ss, b.S)
		as = append(as, b.A)
		rs = append(rs, b.R)
		nss = append(nss, b.NS)
		ts = append(ts, b.T)
		frames += b.Frames
		steps += b.Steps
	}
	if len(ss) == 0 {
		return &Batch{}
	}
	return &Batch{
		S: tensor.Concat(0, ss...), A: tensor.Concat(0, as...),
		R: tensor.Concat(0, rs...), NS: tensor.Concat(0, nss...),
		T: tensor.Concat(0, ts...), Frames: frames, Steps: steps,
	}
}

// WorkerConfig tunes sample collection.
type WorkerConfig struct {
	// NStep is the multi-step return length (1 = one-step transitions).
	NStep int
	// Gamma discounts within the n-step window.
	Gamma float64
	// ComputePriorities runs one batched compute_priorities call per Sample
	// (Ape-X worker-side prioritization).
	ComputePriorities bool
	// FramesPerStep is the frame-skip multiplier for frame accounting.
	FramesPerStep int
	// EnvParallelism > 1 shards the vector env's stepping across that many
	// persistent goroutines (envs.VectorEnv.SetParallelism); results are
	// bit-identical to sequential stepping. Call Close when discarding the
	// worker so the shard goroutines exit.
	EnvParallelism int
}

// pending is one not-yet-matured transition in an n-step window.
type pending struct {
	s      *tensor.Tensor
	action float64
	reward float64
}

// Worker collects samples from a vector of environments using an agent for
// (batched) action selection.
type Worker struct {
	Agent *agents.DQN
	Vec   *envs.VectorEnv
	cfg   WorkerConfig

	windows [][]pending // per-env n-step windows

	// rowPool is a free list of element-shaped observation rows. Sample
	// copies every retained observation out of the VectorEnv's borrowed
	// batch buffer into pooled rows, and returns them after the emitted
	// transitions are stacked into the output Batch — steady-state sampling
	// allocates no fresh row storage.
	rowPool []*tensor.Tensor
	acts    []int // reused action scratch

	// TotalFrames accumulates frames over the worker's lifetime.
	TotalFrames int
}

// NewWorker wires an agent to a vector env.
func NewWorker(agent *agents.DQN, vec *envs.VectorEnv, cfg WorkerConfig) *Worker {
	if cfg.NStep <= 0 {
		cfg.NStep = 1
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 0.99
	}
	if cfg.FramesPerStep <= 0 {
		cfg.FramesPerStep = 1
	}
	if cfg.EnvParallelism > 1 {
		vec.SetParallelism(cfg.EnvParallelism)
	}
	return &Worker{
		Agent:   agent,
		Vec:     vec,
		cfg:     cfg,
		windows: make([][]pending, vec.Len()),
	}
}

// Close stops the vector env's shard goroutines (no-op when sequential).
// The worker remains usable afterwards, stepping sequentially.
func (w *Worker) Close() { w.Vec.Close() }

// SetWeights installs learner weights into the worker's agent.
func (w *Worker) SetWeights(weights map[string]*tensor.Tensor) error {
	return w.Agent.SetWeights(weights)
}

// getRow copies row i of the batched observation src into a pooled
// element-shaped tensor, detaching it from src's (borrowed, reused) storage.
func (w *Worker) getRow(src *tensor.Tensor, i int) *tensor.Tensor {
	n := src.Size() / src.Dim(0)
	var r *tensor.Tensor
	if k := len(w.rowPool); k > 0 {
		r = w.rowPool[k-1]
		w.rowPool = w.rowPool[:k-1]
		if !tensor.SameShape(r.Shape(), src.Shape()[1:]) {
			r = nil // observation shape changed: drop the stale buffer
		}
	}
	if r == nil {
		r = tensor.New(src.Shape()[1:]...)
	}
	copy(r.Data(), src.Data()[i*n:(i+1)*n])
	return r
}

// putRows returns emitted rows to the pool. Consecutive duplicates are
// skipped: a terminal flush emits the same next-state row once per matured
// window entry, and pooling it twice would hand the same buffer to two
// future transitions.
func (w *Worker) putRows(rows []*tensor.Tensor) {
	var prev *tensor.Tensor
	for _, r := range rows {
		if r == prev {
			continue
		}
		w.rowPool = append(w.rowPool, r)
		prev = r
	}
}

// Sample runs numSteps vectorized act/step iterations and returns the
// matured n-step transitions. Acting is one batched call per step; episode
// accounting is array-based; post-processing (priorities) is one batched
// call per task.
func (w *Worker) Sample(numSteps int) (*Batch, error) {
	var outS, outNS []*tensor.Tensor
	var outA, outR, outT []float64

	emit := func(p pending, ret float64, ns *tensor.Tensor, terminal float64) {
		outS = append(outS, p.s)
		outA = append(outA, p.action)
		outR = append(outR, ret)
		outNS = append(outNS, ns)
		outT = append(outT, terminal)
	}

	// nstepReturn folds the window's rewards into a discounted sum from
	// index i onward.
	nstepReturn := func(win []pending, i int) float64 {
		ret := 0.0
		g := 1.0
		for j := i; j < len(win); j++ {
			ret += g * win[j].reward
			g *= w.cfg.Gamma
		}
		return ret
	}

	if w.acts == nil {
		w.acts = make([]int, w.Vec.Len())
	}
	for step := 0; step < numSteps; step++ {
		states := w.Vec.States()
		actions, err := w.Agent.GetActions(states, true)
		if err != nil {
			return nil, fmt.Errorf("execution: acting: %w", err)
		}
		acts := w.acts
		for i := range acts {
			acts[i] = int(actions.Data()[i])
		}
		// The batched states tensor is borrowed from the VectorEnv and will
		// be overwritten by StepAll, so the retained prev-state rows are
		// copied out (into pooled buffers) before stepping. The reward is
		// filled in after the step.
		for i := 0; i < w.Vec.Len(); i++ {
			w.windows[i] = append(w.windows[i], pending{
				s:      w.getRow(states, i),
				action: float64(acts[i]),
			})
		}
		nextStates, rewards, terms := w.Vec.StepAll(acts)
		for i := 0; i < w.Vec.Len(); i++ {
			win := w.windows[i]
			win[len(win)-1].reward = rewards[i]
			if terms[i] == 1 {
				// Terminal: flush the whole window with truncated returns.
				// The next-state row is materialized lazily — only steps
				// that emit transitions copy it.
				ns := w.getRow(nextStates, i)
				for j, p := range win {
					emit(p, nstepReturn(win, j), ns, 1)
				}
				w.windows[i] = win[:0]
				continue
			}
			if len(win) >= w.cfg.NStep {
				p := win[0]
				emit(p, nstepReturn(win, 0), w.getRow(nextStates, i), 0)
				w.windows[i] = win[1:]
			}
		}
	}

	frames := numSteps * w.Vec.Len() * w.cfg.FramesPerStep
	w.TotalFrames += frames
	if len(outA) == 0 {
		return &Batch{Frames: frames, Steps: numSteps}, nil
	}
	b := &Batch{
		S:      tensor.Stack(outS...),
		A:      tensor.FromSlice(outA, len(outA)),
		R:      tensor.FromSlice(outR, len(outR)),
		NS:     tensor.Stack(outNS...),
		T:      tensor.FromSlice(outT, len(outT)),
		Frames: frames,
		Steps:  numSteps,
	}
	// Stack copied the rows into the batch, so the pooled buffers can be
	// reused by the next Sample. Rows still pending in n-step windows are
	// intentionally not returned — they have not been emitted yet.
	w.putRows(outS)
	w.putRows(outNS)
	if w.cfg.ComputePriorities {
		prio, err := w.Agent.ComputePriorities(b.S, b.A, b.R, b.NS, b.T)
		if err != nil {
			return nil, fmt.Errorf("execution: priorities: %w", err)
		}
		b.Prio = prio
	}
	return b, nil
}

// MeanReward reports the mean of the last n finished episode returns.
func (w *Worker) MeanReward(n int) (float64, bool) { return w.Vec.MeanFinishedReward(n) }

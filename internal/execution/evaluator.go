package execution

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rlgraph/internal/envs"
	"rlgraph/internal/tensor"
)

// EvalFunc serves one greedy action for one observation and reports the
// weight-version stamp of the snapshot that produced it — the shape of
// fleet.Router.ActVersion and serve.Service.ActVersion.
type EvalFunc func(obs *tensor.Tensor, deadline time.Time) (action *tensor.Tensor, version int64, err error)

// VersionReward aggregates evaluation episodes attributed to one weight
// version.
type VersionReward struct {
	Version  int64
	Episodes int
	Mean     float64
}

// Evaluator drives greedy evaluation episodes against a serving endpoint and
// attributes every finished episode's return to the highest weight version
// observed during that episode — the observability half of the live
// trainer→serving loop: as the trainer publishes versions, per-version mean
// return shows serving quality climbing. Version 0 means the episode ran
// entirely on the pre-publish baseline weights.
//
// One Evaluator may be shared by many concurrent RunLoop goroutines (the
// recorder is locked); each goroutine must bring its own Env.
type Evaluator struct {
	// Act serves one observation (required).
	Act EvalFunc
	// Deadline is the per-request serving deadline (zero = none).
	Deadline time.Duration
	// MaxSteps caps episode length so a non-terminating policy cannot wedge
	// the loop (default 1000).
	MaxSteps int

	mu       sync.Mutex
	sums     map[int64]float64
	counts   map[int64]int
	episodes int64
	errors   int64
}

// RunLoop plays evaluation episodes on env until stop closes. Safe to call
// from multiple goroutines with distinct envs.
func (ev *Evaluator) RunLoop(env envs.Env, stop <-chan struct{}) {
	maxSteps := ev.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1000
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		obs := env.Reset()
		total := 0.0
		maxVersion := int64(0)
		completed := false
		for step := 0; step < maxSteps; step++ {
			select {
			case <-stop:
				return
			default:
			}
			var dl time.Time
			if ev.Deadline > 0 {
				dl = time.Now().Add(ev.Deadline)
			}
			act, v, err := ev.Act(obs, dl)
			if err != nil {
				atomic.AddInt64(&ev.errors, 1)
				// Abandon the episode; back off briefly so a down fleet is
				// not hot-spun.
				time.Sleep(time.Millisecond)
				break
			}
			if v > maxVersion {
				maxVersion = v
			}
			o, r, done := env.Step(int(act.Data()[0]))
			obs = o
			total += r
			if done {
				completed = true
				break
			}
		}
		if completed {
			ev.record(maxVersion, total)
		}
	}
}

func (ev *Evaluator) record(version int64, ret float64) {
	ev.mu.Lock()
	if ev.sums == nil {
		ev.sums = make(map[int64]float64)
		ev.counts = make(map[int64]int)
	}
	ev.sums[version] += ret
	ev.counts[version]++
	ev.episodes++
	ev.mu.Unlock()
}

// Episodes returns the number of completed (recorded) episodes.
func (ev *Evaluator) Episodes() int64 {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.episodes
}

// Errors returns the number of serving calls that failed.
func (ev *Evaluator) Errors() int64 { return atomic.LoadInt64(&ev.errors) }

// ByVersion returns per-version episode aggregates sorted by version
// ascending — publication order, since ParameterServer versions are
// monotonic.
func (ev *Evaluator) ByVersion() []VersionReward {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	out := make([]VersionReward, 0, len(ev.counts))
	for v, n := range ev.counts {
		out = append(out, VersionReward{Version: v, Episodes: n, Mean: ev.sums[v] / float64(n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

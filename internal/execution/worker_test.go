package execution

import (
	"math"
	"testing"

	"rlgraph/internal/agents"
	"rlgraph/internal/components/nn"
	"rlgraph/internal/envs"
	"rlgraph/internal/tensor"
)

func testAgent(t *testing.T, env envs.Env, prioritized bool) *agents.DQN {
	t.Helper()
	cfg := agents.DQNConfig{
		Backend: "static",
		Network: []nn.LayerSpec{{Type: "dense", Units: 16, Activation: "relu"}},
		Gamma:   0.99,
		Memory:  agents.MemoryConfig{Type: "replay", Capacity: 1000},
		Seed:    1,
	}
	if prioritized {
		cfg.Memory.Type = "prioritized"
	}
	a, err := agents.NewDQN(cfg, env.StateSpace(), env.ActionSpace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Build(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestWorkerCollectsBatch(t *testing.T) {
	env1, env2 := envs.NewGridWorld(3, 1), envs.NewGridWorld(3, 2)
	vec := envs.NewVectorEnv(env1, env2)
	agent := testAgent(t, env1, false)
	w := NewWorker(agent, vec, WorkerConfig{NStep: 1, Gamma: 0.99})
	b, err := w.Sample(10)
	if err != nil {
		t.Fatal(err)
	}
	// 10 steps × 2 envs, 1-step transitions: 20 transitions (plus/minus
	// terminal flushes which for 1-step equal the same count).
	if b.Len() < 18 || b.Len() > 22 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if b.Frames != 20 {
		t.Fatalf("frames = %d", b.Frames)
	}
	if !tensor.SameShape(b.S.Shape(), []int{b.Len(), 9}) {
		t.Fatalf("state shape = %v", b.S.Shape())
	}
}

func TestWorkerNStepReturns(t *testing.T) {
	// GridWorld rewards are deterministic (-0.01 per non-goal step), so a
	// 3-step return must be -0.01*(1+γ+γ²) for interior transitions.
	env := envs.NewGridWorld(4, 3)
	vec := envs.NewVectorEnv(env)
	agent := testAgent(t, env, false)
	gamma := 0.5
	w := NewWorker(agent, vec, WorkerConfig{NStep: 3, Gamma: gamma})
	b, err := w.Sample(30)
	if err != nil {
		t.Fatal(err)
	}
	want := -0.01 * (1 + gamma + gamma*gamma)
	sawInterior := false
	for i := 0; i < b.Len(); i++ {
		if b.T.Data()[i] == 0 {
			sawInterior = true
			if math.Abs(b.R.Data()[i]-want) > 1e-12 {
				t.Fatalf("3-step return = %g, want %g", b.R.Data()[i], want)
			}
		}
	}
	if !sawInterior {
		t.Fatal("no interior transitions collected")
	}
}

func TestWorkerTerminalFlushTruncates(t *testing.T) {
	// On a 2x2 grid episodes end fast; terminal transitions must carry
	// terminal=1 and the post-reset state handling must not leak across
	// episodes (window cleared).
	env := envs.NewGridWorld(2, 4)
	vec := envs.NewVectorEnv(env)
	agent := testAgent(t, env, false)
	w := NewWorker(agent, vec, WorkerConfig{NStep: 5, Gamma: 1})
	b, err := w.Sample(40)
	if err != nil {
		t.Fatal(err)
	}
	terminals := 0
	for i := 0; i < b.Len(); i++ {
		if b.T.Data()[i] == 1 {
			terminals++
		}
	}
	if terminals == 0 {
		t.Fatal("no terminal transitions despite finished episodes")
	}
	if vec.FinishedCount() == 0 {
		t.Fatal("no episodes recorded")
	}
}

func TestWorkerBatchedPriorities(t *testing.T) {
	env := envs.NewGridWorld(3, 5)
	vec := envs.NewVectorEnv(env)
	agent := testAgent(t, env, true)
	w := NewWorker(agent, vec, WorkerConfig{NStep: 1, Gamma: 0.9, ComputePriorities: true})
	b, err := w.Sample(15)
	if err != nil {
		t.Fatal(err)
	}
	if b.Prio == nil || b.Prio.Size() != b.Len() {
		t.Fatalf("priorities missing or wrong size")
	}
	for _, p := range b.Prio.Data() {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("bad priority %g", p)
		}
	}
}

func TestWorkerFrameSkipAccounting(t *testing.T) {
	env := envs.NewPongSim(envs.PongConfig{Seed: 1, FrameSkip: 4, PointsToWin: 3})
	vec := envs.NewVectorEnv(env)
	cfg := agents.DQNConfig{
		Backend: "static",
		Network: []nn.LayerSpec{{Type: "dense", Units: 8}},
		Memory:  agents.MemoryConfig{Capacity: 100, Type: "replay"},
		Seed:    1,
	}
	agent, err := agents.NewDQN(cfg, env.StateSpace(), env.ActionSpace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Build(); err != nil {
		t.Fatal(err)
	}
	w := NewWorker(agent, vec, WorkerConfig{NStep: 1, Gamma: 0.99, FramesPerStep: 4})
	b, err := w.Sample(10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Frames != 40 {
		t.Fatalf("frames = %d, want 40", b.Frames)
	}
	if w.TotalFrames != 40 {
		t.Fatalf("total frames = %d", w.TotalFrames)
	}
}

func TestWorkerRowPoolReuseKeepsBatchesIndependent(t *testing.T) {
	// Row buffers recycled through the pool must not alias across Sample
	// calls: a batch's rows are snapshots, so mutating one batch (or taking
	// another) cannot change an earlier batch's contents.
	env1, env2 := envs.NewGridWorld(3, 1), envs.NewGridWorld(3, 2)
	vec := envs.NewVectorEnv(env1, env2)
	agent := testAgent(t, env1, false)
	w := NewWorker(agent, vec, WorkerConfig{NStep: 2, Gamma: 0.9})
	b1, err := w.Sample(8)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]float64(nil), b1.S.Data()...)
	if _, err := w.Sample(8); err != nil {
		t.Fatal(err)
	}
	for i, v := range b1.S.Data() {
		if v != snap[i] {
			t.Fatalf("batch 1 state data mutated at %d after second Sample", i)
		}
	}
	// One-hot GridWorld states: every emitted row must still be a valid
	// observation (exactly one 1 per row), catching stale/zeroed pool rows.
	n := b1.S.Dim(1)
	for i := 0; i < b1.Len(); i++ {
		ones := 0
		for j := 0; j < n; j++ {
			if b1.S.At(i, j) == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("row %d is not a one-hot observation", i)
		}
	}
}

// BenchmarkWorkerSampleAllocs measures steady-state allocations of the
// vectorized sample loop (satellite of the dtype/scratch perf PR): with the
// row pool and the VectorEnv's reused batch buffers, per-step overhead is a
// handful of output-batch allocations rather than one row per env per step.
func BenchmarkWorkerSampleAllocs(b *testing.B) {
	env1, env2 := envs.NewGridWorld(4, 1), envs.NewGridWorld(4, 2)
	vec := envs.NewVectorEnv(env1, env2)
	cfg := agents.DQNConfig{
		Backend: "static",
		Network: []nn.LayerSpec{{Type: "dense", Units: 16, Activation: "relu"}},
		Gamma:   0.99,
		Memory:  agents.MemoryConfig{Type: "replay", Capacity: 1000},
		Seed:    1,
	}
	agent, err := agents.NewDQN(cfg, env1.StateSpace(), env1.ActionSpace())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := agent.Build(); err != nil {
		b.Fatal(err)
	}
	w := NewWorker(agent, vec, WorkerConfig{NStep: 3, Gamma: 0.99})
	if _, err := w.Sample(16); err != nil { // warm pools and windows
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Sample(16); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcatBatches(t *testing.T) {
	a := &Batch{
		S: tensor.New(2, 3), A: tensor.New(2), R: tensor.New(2),
		NS: tensor.New(2, 3), T: tensor.New(2), Frames: 10, Steps: 5,
	}
	b := &Batch{
		S: tensor.Ones(1, 3), A: tensor.Ones(1), R: tensor.Ones(1),
		NS: tensor.Ones(1, 3), T: tensor.Ones(1), Frames: 4, Steps: 2,
	}
	c := Concat(a, b, &Batch{})
	if c.Len() != 3 || c.Frames != 14 || c.Steps != 7 {
		t.Fatalf("concat: len=%d frames=%d steps=%d", c.Len(), c.Frames, c.Steps)
	}
	if c.A.Data()[2] != 1 {
		t.Fatal("order broken")
	}
}

package spaces

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rlgraph/internal/tensor"
)

func TestFloatBoxSampleContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fb := NewBoundedFloatBox(-1, 1, 3).WithBatchRank().(*FloatBox)
	s := fb.Sample(rng, 5)
	if !tensor.SameShape(s.Shape(), []int{5, 3}) {
		t.Fatalf("shape = %v", s.Shape())
	}
	if !fb.Contains(s) {
		t.Fatal("sample not contained")
	}
	if fb.Contains(tensor.New(5, 4)) {
		t.Fatal("wrong shape accepted")
	}
	if fb.Contains(tensor.Full(2, 5, 3)) {
		t.Fatal("out-of-bounds accepted")
	}
}

func TestFloatBoxUnboundedAcceptsAnything(t *testing.T) {
	fb := NewFloatBox(2)
	if !fb.Contains(tensor.Full(1e9, 2)) {
		t.Fatal("unbounded box rejected value")
	}
}

func TestIntBoxSampleContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ib := NewIntBox(4).WithBatchRank().(*IntBox)
	s := ib.Sample(rng, 10)
	if !tensor.SameShape(s.Shape(), []int{10}) {
		t.Fatalf("shape = %v", s.Shape())
	}
	if !ib.Contains(s) {
		t.Fatal("sample not contained")
	}
	if ib.Contains(tensor.FromSlice([]float64{4}, 1)) {
		t.Fatal("out-of-range accepted")
	}
	if ib.Contains(tensor.FromSlice([]float64{1.5}, 1)) {
		t.Fatal("non-integer accepted")
	}
}

func TestBoolBox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bb := NewBoolBox().WithBatchRank().(*BoolBox)
	s := bb.Sample(rng, 8)
	if !bb.Contains(s) {
		t.Fatal("sample not contained")
	}
	if bb.Contains(tensor.FromSlice([]float64{0.5}, 1)) {
		t.Fatal("non-boolean accepted")
	}
}

func TestTimeRankShapes(t *testing.T) {
	fb := NewFloatBox(64).WithBatchRank().WithTimeRank().(*FloatBox)
	z := fb.Zeros(4)
	if !tensor.SameShape(z.Shape(), []int{4, 1, 64}) {
		t.Fatalf("shape = %v", z.Shape())
	}
	if !fb.HasBatchRank() || !fb.HasTimeRank() {
		t.Fatal("rank flags lost")
	}
}

func TestDictFlattenOrderIsSorted(t *testing.T) {
	d := NewDict(map[string]Space{
		"zeta":  NewFloatBox(1),
		"alpha": NewIntBox(2),
		"mid":   NewBoolBox(),
	})
	leaves := Flatten(d)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, l := range leaves {
		if l.Path != want[i] {
			t.Fatalf("leaf %d path = %q, want %q", i, l.Path, want[i])
		}
	}
}

func TestNestedContainerFlatten(t *testing.T) {
	s := NewDict(map[string]Space{
		"obs": NewTuple(NewFloatBox(2), NewFloatBox(3)),
		"a":   NewIntBox(4),
	})
	leaves := Flatten(s)
	paths := []string{"a", "obs/0", "obs/1"}
	for i, l := range leaves {
		if l.Path != paths[i] {
			t.Fatalf("leaf %d = %q, want %q", i, l.Path, paths[i])
		}
	}
	if NumLeaves(s) != 3 {
		t.Fatal("NumLeaves wrong")
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewDict(map[string]Space{
		"discrete": NewIntBox(3).WithBatchRank(),
		"cont":     NewFloatBox(2).WithBatchRank(),
	})
	v := SampleContainer(s, rng, 6)
	leaves := FlattenValue(s, v)
	v2 := UnflattenValue(s, leaves)
	leaves2 := FlattenValue(s, v2)
	for i := range leaves {
		if !leaves[i].Equal(leaves2[i]) {
			t.Fatalf("leaf %d changed in round trip", i)
		}
	}
	if !ContainsValue(s, v2) {
		t.Fatal("round-tripped value not contained")
	}
}

// Property: for random dict spaces, samples are always contained and the
// flatten/unflatten round trip is the identity on leaves.
func TestSampleContainedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewDict(map[string]Space{
			"x": NewBoundedFloatBox(-2, 2, 1+rng.Intn(4)).WithBatchRank(),
			"y": NewIntBox(1 + rng.Intn(5)).WithBatchRank(),
		})
		batch := 1 + rng.Intn(7)
		v := SampleContainer(s, rng, batch)
		if !ContainsValue(s, v) {
			return false
		}
		leaves := FlattenValue(s, v)
		v2 := UnflattenValue(s, leaves)
		l2 := FlattenValue(s, v2)
		for i := range leaves {
			if !leaves[i].Equal(l2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZerosContainer(t *testing.T) {
	s := NewTuple(NewFloatBox(2).WithBatchRank(), NewIntBox(3).WithBatchRank())
	v := ZerosContainer(s, 4)
	if !ContainsValue(s, v) {
		t.Fatal("zeros not contained")
	}
	if v.At(0).Leaf.Size() != 8 {
		t.Fatal("wrong zeros size")
	}
}

func TestContainsValueRejectsMismatchedTree(t *testing.T) {
	s := NewDict(map[string]Space{"a": NewFloatBox(1)})
	bad := &Value{Dict: map[string]*Value{"b": LeafValue(tensor.New(1))}}
	if ContainsValue(s, bad) {
		t.Fatal("mismatched dict accepted")
	}
}

func TestWithBatchRankContainers(t *testing.T) {
	s := NewDict(map[string]Space{"a": NewFloatBox(1), "b": NewIntBox(2)})
	b := s.WithBatchRank()
	if !b.HasBatchRank() {
		t.Fatal("batch rank not applied to leaves")
	}
	if s.HasBatchRank() {
		t.Fatal("original mutated")
	}
}

func TestStringRendering(t *testing.T) {
	s := NewDict(map[string]Space{"a": NewIntBox(3).WithBatchRank()})
	if s.String() != "Dict{a:IntBox(3)[]+B}" {
		t.Fatalf("String = %q", s.String())
	}
}

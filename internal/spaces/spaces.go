// Package spaces implements RLgraph's generalized space objects (paper §1,
// §3.2). A Space describes the type and shape of data flowing through the
// component graph independently of any backend: agents declare input spaces
// for their root component, and the graph builder uses them to infer shapes,
// create variables, and generate placeholders.
//
// Primitive spaces are boxes (FloatBox, IntBox, BoolBox) with an element
// shape plus optional batch and time ranks. Container spaces (Dict, Tuple)
// nest arbitrarily and can be flattened to an ordered list of primitive
// leaves — the mechanism behind RLgraph's auto split/merge utilities.
package spaces

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rlgraph/internal/tensor"
)

// Space describes the type and shape of values exchanged between components.
type Space interface {
	// Shape returns the element shape excluding batch/time ranks.
	Shape() []int
	// HasBatchRank reports whether values carry a leading batch dimension.
	HasBatchRank() bool
	// HasTimeRank reports whether values carry a time dimension after batch.
	HasTimeRank() bool
	// WithBatchRank returns a copy of the space with a batch rank added.
	WithBatchRank() Space
	// WithTimeRank returns a copy of the space with a time rank added.
	WithTimeRank() Space
	// Sample draws one random element (with the given batch size if the
	// space has a batch rank; pass 1 for unbatched use).
	Sample(rng *rand.Rand, batch int) *tensor.Tensor
	// Zeros returns a zero element with the given batch size.
	Zeros(batch int) *tensor.Tensor
	// Contains reports whether t is a valid (possibly batched) value.
	Contains(t *tensor.Tensor) bool
	// String renders a human-readable description.
	String() string
}

// ContainsElement reports whether t is a valid single element of a
// primitive space, ignoring the space's declared batch/time ranks — the
// admission-time check for serving APIs that accept one observation per
// request and batch them internally along the wildcard batch dim. Value
// constraints (bounds, integrality) are checked like Contains.
func ContainsElement(sp Space, t *tensor.Tensor) bool {
	if t == nil {
		return false
	}
	if !tensor.SameShape(t.Shape(), sp.Shape()) {
		return false
	}
	lead := 0
	if sp.HasBatchRank() {
		lead++
	}
	if sp.HasTimeRank() {
		lead++
	}
	if lead == 0 {
		return sp.Contains(t)
	}
	// Reinstate the lead dims as size-1 so Contains sees the declared rank.
	shape := make([]int, 0, lead+t.Rank())
	for i := 0; i < lead; i++ {
		shape = append(shape, 1)
	}
	shape = append(shape, t.Shape()...)
	return sp.Contains(t.Reshape(shape...))
}

// box holds the fields shared by the primitive spaces.
type box struct {
	shape     []int
	batchRank bool
	timeRank  bool
}

func (b box) Shape() []int       { return b.shape }
func (b box) HasBatchRank() bool { return b.batchRank }
func (b box) HasTimeRank() bool  { return b.timeRank }

// fullShape prepends batch (and time) dims to the element shape.
func (b box) fullShape(batch int) []int {
	var s []int
	if b.batchRank {
		s = append(s, batch)
	}
	if b.timeRank {
		s = append(s, 1)
	}
	return append(s, b.shape...)
}

// leadRanks counts how many leading dims a value carries beyond the element
// shape.
func (b box) leadRanks() int {
	n := 0
	if b.batchRank {
		n++
	}
	if b.timeRank {
		n++
	}
	return n
}

func (b box) containsShape(t *tensor.Tensor) bool {
	want := len(b.shape) + b.leadRanks()
	if t.Rank() != want {
		return false
	}
	got := t.Shape()[b.leadRanks():]
	return tensor.SameShape(got, b.shape)
}

func (b box) rankSuffix() string {
	var tags []string
	if b.batchRank {
		tags = append(tags, "B")
	}
	if b.timeRank {
		tags = append(tags, "T")
	}
	if len(tags) == 0 {
		return ""
	}
	return "+" + strings.Join(tags, "")
}

// FloatBox is a continuous space with optional bounds.
type FloatBox struct {
	box
	Low, High float64 // sampling bounds; Low==High==0 means unbounded N(0,1)
}

// NewFloatBox returns an unbounded float space with the given element shape.
func NewFloatBox(shape ...int) *FloatBox {
	return &FloatBox{box: box{shape: append([]int(nil), shape...)}}
}

// NewBoundedFloatBox returns a float space sampled uniformly from [low, high).
func NewBoundedFloatBox(low, high float64, shape ...int) *FloatBox {
	fb := NewFloatBox(shape...)
	fb.Low, fb.High = low, high
	return fb
}

// WithBatchRank returns a copy with a batch rank.
func (f *FloatBox) WithBatchRank() Space {
	c := *f
	c.batchRank = true
	return &c
}

// WithTimeRank returns a copy with a time rank.
func (f *FloatBox) WithTimeRank() Space {
	c := *f
	c.timeRank = true
	return &c
}

// Sample draws uniform samples within bounds, or N(0,1) if unbounded.
func (f *FloatBox) Sample(rng *rand.Rand, batch int) *tensor.Tensor {
	shape := f.fullShape(batch)
	if f.Low == 0 && f.High == 0 {
		return tensor.RandNormal(rng, 0, 1, shape...)
	}
	return tensor.RandUniform(rng, f.Low, f.High, shape...)
}

// Zeros returns a zero tensor of the batched shape.
func (f *FloatBox) Zeros(batch int) *tensor.Tensor {
	return tensor.New(f.fullShape(batch)...)
}

// Contains checks shape compatibility and bounds (if bounded).
func (f *FloatBox) Contains(t *tensor.Tensor) bool {
	if !f.containsShape(t) {
		return false
	}
	if f.Low == 0 && f.High == 0 {
		return true
	}
	for _, v := range t.Data() {
		if v < f.Low || v > f.High {
			return false
		}
	}
	return true
}

func (f *FloatBox) String() string {
	return fmt.Sprintf("FloatBox%v%s", f.shape, f.rankSuffix())
}

// IntBox is a discrete space with values in [0, N).
type IntBox struct {
	box
	N int // number of categories; 0 means unbounded non-negative ints
}

// NewIntBox returns a scalar discrete space with n categories.
func NewIntBox(n int, shape ...int) *IntBox {
	return &IntBox{box: box{shape: append([]int(nil), shape...)}, N: n}
}

// WithBatchRank returns a copy with a batch rank.
func (i *IntBox) WithBatchRank() Space {
	c := *i
	c.batchRank = true
	return &c
}

// WithTimeRank returns a copy with a time rank.
func (i *IntBox) WithTimeRank() Space {
	c := *i
	c.timeRank = true
	return &c
}

// Sample draws uniform category indices.
func (i *IntBox) Sample(rng *rand.Rand, batch int) *tensor.Tensor {
	t := tensor.New(i.fullShape(batch)...)
	n := i.N
	if n <= 0 {
		n = 1 << 30
	}
	d := t.Data()
	for k := range d {
		d[k] = float64(rng.Intn(n))
	}
	return t
}

// Zeros returns a zero tensor of the batched shape.
func (i *IntBox) Zeros(batch int) *tensor.Tensor {
	return tensor.New(i.fullShape(batch)...)
}

// Contains checks shape, integrality and range.
func (i *IntBox) Contains(t *tensor.Tensor) bool {
	if !i.containsShape(t) {
		return false
	}
	for _, v := range t.Data() {
		if v != float64(int(v)) || v < 0 {
			return false
		}
		if i.N > 0 && int(v) >= i.N {
			return false
		}
	}
	return true
}

func (i *IntBox) String() string {
	return fmt.Sprintf("IntBox(%d)%v%s", i.N, i.shape, i.rankSuffix())
}

// BoolBox is a space of 0/1 values (e.g. terminal flags).
type BoolBox struct {
	box
}

// NewBoolBox returns a boolean space with the given element shape.
func NewBoolBox(shape ...int) *BoolBox {
	return &BoolBox{box: box{shape: append([]int(nil), shape...)}}
}

// WithBatchRank returns a copy with a batch rank.
func (b *BoolBox) WithBatchRank() Space {
	c := *b
	c.batchRank = true
	return &c
}

// WithTimeRank returns a copy with a time rank.
func (b *BoolBox) WithTimeRank() Space {
	c := *b
	c.timeRank = true
	return &c
}

// Sample draws independent fair coin flips.
func (b *BoolBox) Sample(rng *rand.Rand, batch int) *tensor.Tensor {
	t := tensor.New(b.fullShape(batch)...)
	d := t.Data()
	for k := range d {
		if rng.Intn(2) == 1 {
			d[k] = 1
		}
	}
	return t
}

// Zeros returns a zero tensor of the batched shape.
func (b *BoolBox) Zeros(batch int) *tensor.Tensor {
	return tensor.New(b.fullShape(batch)...)
}

// Contains checks shape and 0/1-ness.
func (b *BoolBox) Contains(t *tensor.Tensor) bool {
	if !b.containsShape(t) {
		return false
	}
	for _, v := range t.Data() {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

func (b *BoolBox) String() string {
	return fmt.Sprintf("BoolBox%v%s", b.shape, b.rankSuffix())
}

// Dict is a container space with named sub-spaces (paper Listing 1's action
// space with one discrete and one continuous member). Keys are ordered
// lexicographically for deterministic flattening.
type Dict struct {
	keys []string
	subs map[string]Space
}

// NewDict builds a dict space from key/space pairs.
func NewDict(pairs map[string]Space) *Dict {
	d := &Dict{subs: make(map[string]Space, len(pairs))}
	for k, v := range pairs {
		d.keys = append(d.keys, k)
		d.subs[k] = v
	}
	sort.Strings(d.keys)
	return d
}

// Keys returns the sorted key list.
func (d *Dict) Keys() []string { return d.keys }

// Sub returns the sub-space for key.
func (d *Dict) Sub(key string) Space { return d.subs[key] }

// Shape panics: container spaces have no single shape.
func (d *Dict) Shape() []int { panic("spaces: Dict has no primitive shape") }

// HasBatchRank reports whether all leaves carry a batch rank.
func (d *Dict) HasBatchRank() bool {
	for _, k := range d.keys {
		if !d.subs[k].HasBatchRank() {
			return false
		}
	}
	return len(d.keys) > 0
}

// HasTimeRank reports whether all leaves carry a time rank.
func (d *Dict) HasTimeRank() bool {
	for _, k := range d.keys {
		if !d.subs[k].HasTimeRank() {
			return false
		}
	}
	return len(d.keys) > 0
}

// WithBatchRank applies WithBatchRank to every sub-space.
func (d *Dict) WithBatchRank() Space {
	m := make(map[string]Space, len(d.keys))
	for _, k := range d.keys {
		m[k] = d.subs[k].WithBatchRank()
	}
	return NewDict(m)
}

// WithTimeRank applies WithTimeRank to every sub-space.
func (d *Dict) WithTimeRank() Space {
	m := make(map[string]Space, len(d.keys))
	for _, k := range d.keys {
		m[k] = d.subs[k].WithTimeRank()
	}
	return NewDict(m)
}

// Sample panics: use SampleContainer to sample containers.
func (d *Dict) Sample(*rand.Rand, int) *tensor.Tensor {
	panic("spaces: Sample on Dict; use SampleContainer")
}

// Zeros panics: use ZerosContainer.
func (d *Dict) Zeros(int) *tensor.Tensor {
	panic("spaces: Zeros on Dict; use ZerosContainer")
}

// Contains panics: containers hold Value trees, not single tensors.
func (d *Dict) Contains(*tensor.Tensor) bool {
	panic("spaces: Contains on Dict; use ContainsValue")
}

func (d *Dict) String() string {
	parts := make([]string, len(d.keys))
	for i, k := range d.keys {
		parts[i] = fmt.Sprintf("%s:%s", k, d.subs[k])
	}
	return "Dict{" + strings.Join(parts, ", ") + "}"
}

// Tuple is an ordered container space.
type Tuple struct {
	subs []Space
}

// NewTuple builds a tuple space from sub-spaces.
func NewTuple(subs ...Space) *Tuple { return &Tuple{subs: subs} }

// Len returns the number of sub-spaces.
func (tp *Tuple) Len() int { return len(tp.subs) }

// Sub returns sub-space i.
func (tp *Tuple) Sub(i int) Space { return tp.subs[i] }

// Shape panics: container spaces have no single shape.
func (tp *Tuple) Shape() []int { panic("spaces: Tuple has no primitive shape") }

// HasBatchRank reports whether all leaves carry a batch rank.
func (tp *Tuple) HasBatchRank() bool {
	for _, s := range tp.subs {
		if !s.HasBatchRank() {
			return false
		}
	}
	return len(tp.subs) > 0
}

// HasTimeRank reports whether all leaves carry a time rank.
func (tp *Tuple) HasTimeRank() bool {
	for _, s := range tp.subs {
		if !s.HasTimeRank() {
			return false
		}
	}
	return len(tp.subs) > 0
}

// WithBatchRank applies WithBatchRank to every sub-space.
func (tp *Tuple) WithBatchRank() Space {
	out := make([]Space, len(tp.subs))
	for i, s := range tp.subs {
		out[i] = s.WithBatchRank()
	}
	return NewTuple(out...)
}

// WithTimeRank applies WithTimeRank to every sub-space.
func (tp *Tuple) WithTimeRank() Space {
	out := make([]Space, len(tp.subs))
	for i, s := range tp.subs {
		out[i] = s.WithTimeRank()
	}
	return NewTuple(out...)
}

// Sample panics: use SampleContainer.
func (tp *Tuple) Sample(*rand.Rand, int) *tensor.Tensor {
	panic("spaces: Sample on Tuple; use SampleContainer")
}

// Zeros panics: use ZerosContainer.
func (tp *Tuple) Zeros(int) *tensor.Tensor {
	panic("spaces: Zeros on Tuple; use ZerosContainer")
}

// Contains panics: use ContainsValue.
func (tp *Tuple) Contains(*tensor.Tensor) bool {
	panic("spaces: Contains on Tuple; use ContainsValue")
}

func (tp *Tuple) String() string {
	parts := make([]string, len(tp.subs))
	for i, s := range tp.subs {
		parts[i] = s.String()
	}
	return "Tuple(" + strings.Join(parts, ", ") + ")"
}

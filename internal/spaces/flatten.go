package spaces

import (
	"fmt"
	"math/rand"
	"strconv"

	"rlgraph/internal/tensor"
)

// Value is a (possibly nested) space element: either a tensor leaf, a dict of
// values, or a tuple of values. Exactly one field is set.
type Value struct {
	Leaf  *tensor.Tensor
	Dict  map[string]*Value
	Tuple []*Value
}

// LeafValue wraps a tensor as a Value.
func LeafValue(t *tensor.Tensor) *Value { return &Value{Leaf: t} }

// IsLeaf reports whether v is a tensor leaf.
func (v *Value) IsLeaf() bool { return v.Leaf != nil }

// Get returns the sub-value for a dict key, panicking when absent.
func (v *Value) Get(key string) *Value {
	s, ok := v.Dict[key]
	if !ok {
		panic(fmt.Sprintf("spaces: value has no key %q", key))
	}
	return s
}

// At returns the i-th tuple sub-value.
func (v *Value) At(i int) *Value { return v.Tuple[i] }

// LeafPath names one primitive leaf within a container space, e.g.
// "discrete" for Dict{discrete, cont} or "0/pos" for nested containers.
type LeafPath struct {
	Path  string
	Space Space
}

// Flatten returns the ordered primitive leaves of a space. A primitive space
// flattens to a single leaf with an empty path. Dict keys flatten in sorted
// order; tuples in index order. This ordering is the contract behind
// RLgraph's ContainerSplitter/Merger components.
func Flatten(s Space) []LeafPath {
	var out []LeafPath
	var walk func(prefix string, s Space)
	walk = func(prefix string, s Space) {
		switch sp := s.(type) {
		case *Dict:
			for _, k := range sp.Keys() {
				walk(join(prefix, k), sp.Sub(k))
			}
		case *Tuple:
			for i := 0; i < sp.Len(); i++ {
				walk(join(prefix, strconv.Itoa(i)), sp.Sub(i))
			}
		default:
			out = append(out, LeafPath{Path: prefix, Space: s})
		}
	}
	walk("", s)
	return out
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "/" + key
}

// FlattenValue returns v's tensor leaves in the same order Flatten(s) lists
// the space's leaves.
func FlattenValue(s Space, v *Value) []*tensor.Tensor {
	var out []*tensor.Tensor
	var walk func(s Space, v *Value)
	walk = func(s Space, v *Value) {
		switch sp := s.(type) {
		case *Dict:
			for _, k := range sp.Keys() {
				walk(sp.Sub(k), v.Get(k))
			}
		case *Tuple:
			for i := 0; i < sp.Len(); i++ {
				walk(sp.Sub(i), v.At(i))
			}
		default:
			if v.Leaf == nil {
				panic("spaces: FlattenValue hit a non-leaf value at a primitive space")
			}
			out = append(out, v.Leaf)
		}
	}
	walk(s, v)
	return out
}

// UnflattenValue rebuilds a Value tree for space s from leaves listed in
// Flatten order. It is the inverse of FlattenValue.
func UnflattenValue(s Space, leaves []*tensor.Tensor) *Value {
	i := 0
	var walk func(s Space) *Value
	walk = func(s Space) *Value {
		switch sp := s.(type) {
		case *Dict:
			m := make(map[string]*Value, len(sp.Keys()))
			for _, k := range sp.Keys() {
				m[k] = walk(sp.Sub(k))
			}
			return &Value{Dict: m}
		case *Tuple:
			vs := make([]*Value, sp.Len())
			for j := 0; j < sp.Len(); j++ {
				vs[j] = walk(sp.Sub(j))
			}
			return &Value{Tuple: vs}
		default:
			if i >= len(leaves) {
				panic("spaces: UnflattenValue ran out of leaves")
			}
			v := LeafValue(leaves[i])
			i++
			return v
		}
	}
	out := walk(s)
	if i != len(leaves) {
		panic(fmt.Sprintf("spaces: UnflattenValue consumed %d of %d leaves", i, len(leaves)))
	}
	return out
}

// SampleContainer samples a full Value tree for any space (container or
// primitive).
func SampleContainer(s Space, rng *rand.Rand, batch int) *Value {
	leaves := Flatten(s)
	ts := make([]*tensor.Tensor, len(leaves))
	for i, l := range leaves {
		ts[i] = l.Space.Sample(rng, batch)
	}
	return UnflattenValue(s, ts)
}

// ZerosContainer builds a zero Value tree for any space.
func ZerosContainer(s Space, batch int) *Value {
	leaves := Flatten(s)
	ts := make([]*tensor.Tensor, len(leaves))
	for i, l := range leaves {
		ts[i] = l.Space.Zeros(batch)
	}
	return UnflattenValue(s, ts)
}

// ContainsValue reports whether v is a valid element of s, recursing through
// containers.
func ContainsValue(s Space, v *Value) bool {
	switch sp := s.(type) {
	case *Dict:
		if v.Dict == nil || len(v.Dict) != len(sp.Keys()) {
			return false
		}
		for _, k := range sp.Keys() {
			sub, ok := v.Dict[k]
			if !ok || !ContainsValue(sp.Sub(k), sub) {
				return false
			}
		}
		return true
	case *Tuple:
		if len(v.Tuple) != sp.Len() {
			return false
		}
		for i := 0; i < sp.Len(); i++ {
			if !ContainsValue(sp.Sub(i), v.Tuple[i]) {
				return false
			}
		}
		return true
	default:
		return v.Leaf != nil && s.Contains(v.Leaf)
	}
}

// NumLeaves returns the number of primitive leaves of s.
func NumLeaves(s Space) int { return len(Flatten(s)) }

// Package backend defines the unified operation interface that RLgraph
// graph functions are written against. A graph function receives an Ops
// value and opaque Refs; with the static implementation Refs are dataflow
// graph nodes and the function *constructs* a graph, while with the
// define-by-run implementation Refs are concrete tensors and the function
// *computes* immediately. This realizes the paper's single-stream graph
// functions (§4.2): one component implementation serves both backends.
package backend

import (
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// Ref is an opaque handle to a value: a *graph.Node under the static backend
// or an *eager.Value under define-by-run.
type Ref interface{}

// StatefulFn is a host-side computation with native Go state (memories,
// queues, counters). It must not be differentiated through.
type StatefulFn func(inputs []*tensor.Tensor) (*tensor.Tensor, error)

// StatefulMultiFn is a multi-output host-side computation.
type StatefulMultiFn func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error)

// StatefulError carries a stateful-op failure out of a define-by-run
// traversal (raised as a panic because graph-fn signatures have no error
// path; executors recover it into an ordinary error).
type StatefulError struct {
	// OpName is the stateful op that failed.
	OpName string
	// Err is the underlying failure.
	Err error
}

func (e *StatefulError) Error() string { return "backend: stateful " + e.OpName + ": " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *StatefulError) Unwrap() error { return e.Err }

// Mode distinguishes the build pass (shape/variable inference with
// artificial inputs) from actual execution.
type Mode int

const (
	// ModeBuild is the graph-compilation pass: static backends emit nodes,
	// define-by-run backends push artificial zero tensors for inference.
	ModeBuild Mode = iota
	// ModeRun is define-by-run execution with real data.
	ModeRun
)

// Ops is the backend-independent operation set used inside graph functions.
type Ops interface {
	// Name identifies the backend: "static" or "define-by-run".
	Name() string
	// Mode reports whether this pass builds or runs.
	Mode() Mode

	// ShapeOf returns the (static) shape of a ref; -1 marks unknown dims.
	ShapeOf(x Ref) []int

	Const(t *tensor.Tensor) Ref
	ConstScalar(v float64) Ref
	// VarRead reads a variable; repeated reads of one variable within a
	// pass share identity so Gradients can resolve them.
	VarRead(v *vars.Variable) Ref

	Add(a, b Ref) Ref
	Sub(a, b Ref) Ref
	Mul(a, b Ref) Ref
	Div(a, b Ref) Ref
	Neg(x Ref) Ref
	Exp(x Ref) Ref
	Log(x Ref) Ref
	Sqrt(x Ref) Ref
	Square(x Ref) Ref
	Abs(x Ref) Ref
	Relu(x Ref) Ref
	Tanh(x Ref) Ref
	Sigmoid(x Ref) Ref
	Scale(x Ref, s float64) Ref
	AddScalar(x Ref, s float64) Ref
	OneMinus(x Ref) Ref
	Clip(x Ref, lo, hi float64) Ref
	Maximum(a, b Ref) Ref
	Minimum(a, b Ref) Ref
	GreaterEqual(a, b Ref) Ref
	LessEqual(a, b Ref) Ref
	Where(cond, a, b Ref) Ref
	StopGradient(x Ref) Ref

	MatMul(a, b Ref) Ref
	Conv2D(x, filter Ref, p tensor.ConvParams) Ref

	Sum(x Ref) Ref
	Mean(x Ref) Ref
	SumAxis(x Ref, axis int, keepDims bool) Ref
	MeanAxis(x Ref, axis int, keepDims bool) Ref
	MaxAxis(x Ref, axis int, keepDims bool) Ref
	ArgMaxAxis(x Ref, axis int) Ref
	Softmax(x Ref) Ref
	LogSoftmax(x Ref) Ref

	Reshape(x Ref, shape ...int) Ref
	FlattenBatch(x Ref) Ref
	Concat(axis int, xs ...Ref) Ref
	// SliceCols selects columns [lo, hi) of the last axis (the primitive
	// behind container splitting over flattened representations).
	SliceCols(x Ref, lo, hi int) Ref
	// ShardRows selects shard i of k along the (runtime) leading axis — the
	// tower input splitter of the synchronous multi-GPU strategy.
	ShardRows(x Ref, i, k int) Ref
	Transpose(x Ref, perm ...int) Ref
	TakeAlongLastAxis(x, idx Ref) Ref
	GatherRows(table, idx Ref) Ref
	OneHot(idx Ref, depth int) Ref

	// Stateful embeds a host computation with declared output shape. During
	// a define-by-run build pass the function is NOT invoked; a zero tensor
	// of the declared shape (unknown dims as 1) is produced instead, so
	// artificial build inputs never mutate component state.
	Stateful(name string, outShape []int, fn StatefulFn, ins ...Ref) Ref
	// StatefulMulti is Stateful with several outputs that must observe one
	// consistent invocation (e.g. the fields of one sampled replay batch).
	StatefulMulti(name string, outShapes [][]int, fn StatefulMultiFn, ins ...Ref) []Ref

	// Gradients returns d loss/d v for each variable, as refs. loss must be
	// scalar. Variables the loss does not reach yield zero gradients.
	Gradients(loss Ref, vs []*vars.Variable) []Ref

	// AssignVar stores val into v when the returned ref is evaluated.
	AssignVar(v *vars.Variable, val Ref) Ref
	// AddToVar computes v += scale*delta when evaluated (gradient
	// application without fresh graph construction per step).
	AddToVar(v *vars.Variable, delta Ref, scale float64) Ref
	// Group forces evaluation of all refs, yielding scalar 0.
	Group(refs ...Ref) Ref

	// Eval forces a ref to a concrete tensor. Only valid under define-by-run
	// (static graphs evaluate through a Session instead); static backends
	// return nil.
	Eval(x Ref) *tensor.Tensor

	// SetDefaultDevice assigns subsequently created operations to a device.
	// The builder brackets each component's graph functions with its device,
	// replacing TF's nested device contexts with explicit per-component
	// assignment.
	SetDefaultDevice(d string)
	// DefaultDevice returns the current default device.
	DefaultDevice() string
}

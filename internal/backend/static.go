package backend

import (
	"rlgraph/internal/graph"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// StaticOps implements Ops by emitting nodes into a dataflow graph. Refs are
// *graph.Node values; nothing is computed until a Session runs the graph.
type StaticOps struct {
	G *graph.Graph

	varReads map[*vars.Variable]*graph.Node
}

// NewStaticOps returns an Ops that builds into g.
func NewStaticOps(g *graph.Graph) *StaticOps {
	return &StaticOps{G: g, varReads: make(map[*vars.Variable]*graph.Node)}
}

// Name identifies the backend.
func (s *StaticOps) Name() string { return "static" }

// Mode is always ModeBuild: static graphs are only ever constructed here.
func (s *StaticOps) Mode() Mode { return ModeBuild }

func n(x Ref) *graph.Node { return x.(*graph.Node) }

// ShapeOf returns the node's static shape.
func (s *StaticOps) ShapeOf(x Ref) []int { return n(x).Shape() }

// Const emits a constant node.
func (s *StaticOps) Const(t *tensor.Tensor) Ref { return graph.Const(s.G, t) }

// ConstScalar emits a scalar constant node.
func (s *StaticOps) ConstScalar(v float64) Ref { return graph.ConstScalar(s.G, v) }

// VarRead emits (or reuses) the read node for v.
func (s *StaticOps) VarRead(v *vars.Variable) Ref {
	if r, ok := s.varReads[v]; ok {
		return r
	}
	r := graph.VarRead(s.G, v)
	s.varReads[v] = r
	return r
}

// Add emits a+b.
func (s *StaticOps) Add(a, b Ref) Ref { return graph.Add(s.G, n(a), n(b)) }

// Sub emits a-b.
func (s *StaticOps) Sub(a, b Ref) Ref { return graph.Sub(s.G, n(a), n(b)) }

// Mul emits a*b.
func (s *StaticOps) Mul(a, b Ref) Ref { return graph.Mul(s.G, n(a), n(b)) }

// Div emits a/b.
func (s *StaticOps) Div(a, b Ref) Ref { return graph.Div(s.G, n(a), n(b)) }

// Neg emits -x.
func (s *StaticOps) Neg(x Ref) Ref { return graph.Neg(s.G, n(x)) }

// Exp emits e**x.
func (s *StaticOps) Exp(x Ref) Ref { return graph.Exp(s.G, n(x)) }

// Log emits ln(x).
func (s *StaticOps) Log(x Ref) Ref { return graph.Log(s.G, n(x)) }

// Sqrt emits sqrt(x).
func (s *StaticOps) Sqrt(x Ref) Ref { return graph.Sqrt(s.G, n(x)) }

// Square emits x².
func (s *StaticOps) Square(x Ref) Ref { return graph.Square(s.G, n(x)) }

// Abs emits |x|.
func (s *StaticOps) Abs(x Ref) Ref { return graph.Abs(s.G, n(x)) }

// Relu emits max(x,0).
func (s *StaticOps) Relu(x Ref) Ref { return graph.Relu(s.G, n(x)) }

// Tanh emits tanh(x).
func (s *StaticOps) Tanh(x Ref) Ref { return graph.Tanh(s.G, n(x)) }

// Sigmoid emits σ(x).
func (s *StaticOps) Sigmoid(x Ref) Ref { return graph.Sigmoid(s.G, n(x)) }

// Scale emits x*s.
func (s *StaticOps) Scale(x Ref, v float64) Ref { return graph.Scale(s.G, n(x), v) }

// AddScalar emits x+s.
func (s *StaticOps) AddScalar(x Ref, v float64) Ref { return graph.AddScalar(s.G, n(x), v) }

// OneMinus emits 1-x.
func (s *StaticOps) OneMinus(x Ref) Ref { return graph.OneMinus(s.G, n(x)) }

// Clip emits clip(x, lo, hi).
func (s *StaticOps) Clip(x Ref, lo, hi float64) Ref { return graph.Clip(s.G, n(x), lo, hi) }

// Maximum emits max(a,b).
func (s *StaticOps) Maximum(a, b Ref) Ref { return graph.Maximum(s.G, n(a), n(b)) }

// Minimum emits min(a,b).
func (s *StaticOps) Minimum(a, b Ref) Ref { return graph.Minimum(s.G, n(a), n(b)) }

// GreaterEqual emits a>=b.
func (s *StaticOps) GreaterEqual(a, b Ref) Ref { return graph.GreaterEqual(s.G, n(a), n(b)) }

// LessEqual emits a<=b.
func (s *StaticOps) LessEqual(a, b Ref) Ref { return graph.LessEqual(s.G, n(a), n(b)) }

// Where emits select(cond, a, b).
func (s *StaticOps) Where(cond, a, b Ref) Ref { return graph.Where(s.G, n(cond), n(a), n(b)) }

// StopGradient emits a gradient barrier.
func (s *StaticOps) StopGradient(x Ref) Ref { return graph.StopGradient(s.G, n(x)) }

// MatMul emits a matrix product.
func (s *StaticOps) MatMul(a, b Ref) Ref { return graph.MatMul(s.G, n(a), n(b)) }

// Conv2D emits an NHWC convolution.
func (s *StaticOps) Conv2D(x, f Ref, p tensor.ConvParams) Ref {
	return graph.Conv2D(s.G, n(x), n(f), p)
}

// Sum emits a full reduction.
func (s *StaticOps) Sum(x Ref) Ref { return graph.Sum(s.G, n(x)) }

// Mean emits a full mean reduction.
func (s *StaticOps) Mean(x Ref) Ref { return graph.Mean(s.G, n(x)) }

// SumAxis emits a single-axis sum.
func (s *StaticOps) SumAxis(x Ref, axis int, keep bool) Ref {
	return graph.SumAxis(s.G, n(x), axis, keep)
}

// MeanAxis emits a single-axis mean.
func (s *StaticOps) MeanAxis(x Ref, axis int, keep bool) Ref {
	return graph.MeanAxis(s.G, n(x), axis, keep)
}

// MaxAxis emits a single-axis max.
func (s *StaticOps) MaxAxis(x Ref, axis int, keep bool) Ref {
	return graph.MaxAxis(s.G, n(x), axis, keep)
}

// ArgMaxAxis emits an argmax.
func (s *StaticOps) ArgMaxAxis(x Ref, axis int) Ref { return graph.ArgMaxAxis(s.G, n(x), axis) }

// Softmax emits a last-axis softmax.
func (s *StaticOps) Softmax(x Ref) Ref { return graph.Softmax(s.G, n(x)) }

// LogSoftmax emits a last-axis log-softmax.
func (s *StaticOps) LogSoftmax(x Ref) Ref { return graph.LogSoftmax(s.G, n(x)) }

// Reshape emits a reshape.
func (s *StaticOps) Reshape(x Ref, shape ...int) Ref { return graph.Reshape(s.G, n(x), shape...) }

// FlattenBatch emits a batch-preserving flatten.
func (s *StaticOps) FlattenBatch(x Ref) Ref { return graph.FlattenBatch(s.G, n(x)) }

// Concat emits a concatenation.
func (s *StaticOps) Concat(axis int, xs ...Ref) Ref {
	ns := make([]*graph.Node, len(xs))
	for i, x := range xs {
		ns[i] = n(x)
	}
	return graph.Concat(s.G, axis, ns...)
}

// Transpose emits a dimension permutation.
func (s *StaticOps) Transpose(x Ref, perm ...int) Ref {
	return graph.Transpose(s.G, n(x), perm...)
}

// TakeAlongLastAxis emits per-row selection.
func (s *StaticOps) TakeAlongLastAxis(x, idx Ref) Ref {
	return graph.TakeAlongLastAxis(s.G, n(x), n(idx))
}

// GatherRows emits a row gather.
func (s *StaticOps) GatherRows(table, idx Ref) Ref {
	return graph.GatherRows(s.G, n(table), n(idx))
}

// OneHot emits a one-hot encoding.
func (s *StaticOps) OneHot(idx Ref, depth int) Ref { return graph.OneHot(s.G, n(idx), depth) }

// Stateful emits a host-computation node.
func (s *StaticOps) Stateful(name string, outShape []int, fn StatefulFn, ins ...Ref) Ref {
	ns := make([]*graph.Node, len(ins))
	for i, x := range ins {
		ns[i] = n(x)
	}
	return graph.Stateful(s.G, name, outShape, graph.StatefulFunc(fn), ns...)
}

// StatefulMulti emits a multi-output host computation.
func (s *StaticOps) StatefulMulti(name string, outShapes [][]int, fn StatefulMultiFn, ins ...Ref) []Ref {
	ns := make([]*graph.Node, len(ins))
	for i, x := range ins {
		ns[i] = n(x)
	}
	nodes := graph.StatefulMulti(s.G, name, outShapes, graph.StatefulMultiFunc(fn), ns...)
	out := make([]Ref, len(nodes))
	for i, nd := range nodes {
		out[i] = nd
	}
	return out
}

// Gradients emits gradient sub-graphs for the given variables.
func (s *StaticOps) Gradients(loss Ref, vs []*vars.Variable) []Ref {
	wrt := make([]*graph.Node, len(vs))
	for i, v := range vs {
		wrt[i] = n(s.VarRead(v))
	}
	gs := graph.Gradients(s.G, n(loss), wrt)
	out := make([]Ref, len(gs))
	for i, g := range gs {
		out[i] = g
	}
	return out
}

// AssignVar emits a variable store.
func (s *StaticOps) AssignVar(v *vars.Variable, val Ref) Ref {
	return graph.Assign(s.G, v, n(val))
}

// AddToVar emits v += scale*delta.
func (s *StaticOps) AddToVar(v *vars.Variable, delta Ref, scale float64) Ref {
	return graph.AddTo(s.G, v, n(delta), scale)
}

// Group emits a node forcing evaluation of all refs.
func (s *StaticOps) Group(refs ...Ref) Ref {
	ns := make([]*graph.Node, len(refs))
	for i, x := range refs {
		ns[i] = n(x)
	}
	return graph.Group(s.G, ns...)
}

// Eval returns nil: static refs evaluate through a Session.
func (s *StaticOps) Eval(Ref) *tensor.Tensor { return nil }

// SetDefaultDevice routes new nodes to a device.
func (s *StaticOps) SetDefaultDevice(d string) { s.G.SetDefaultDevice(d) }

// DefaultDevice returns the graph's current default device.
func (s *StaticOps) DefaultDevice() string { return s.G.DefaultDevice() }

// SliceCols emits a last-axis column slice.
func (s *StaticOps) SliceCols(x Ref, lo, hi int) Ref { return graph.SliceCols(s.G, n(x), lo, hi) }

// ShardRows emits a leading-axis batch shard.
func (s *StaticOps) ShardRows(x Ref, i, k int) Ref { return graph.ShardRows(s.G, n(x), i, k) }

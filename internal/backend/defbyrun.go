package backend

import (
	"fmt"

	"rlgraph/internal/eager"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// EagerOps implements Ops with define-by-run semantics: every call computes
// immediately on concrete tensors. In ModeBuild, inputs are artificial zero
// tensors pushed through for shape/variable inference (the paper's PyTorch
// build strategy), and stateful functions are skipped. A per-pass tape
// supports Gradients; pass a nil tape for inference-only execution (the
// no-grad fast path).
type EagerOps struct {
	Tape *eager.Tape

	mode    Mode
	device  string
	watched map[*vars.Variable]*eager.Value
}

// NewEagerOps returns define-by-run Ops. tape may be nil for no-grad runs.
func NewEagerOps(tape *eager.Tape, mode Mode) *EagerOps {
	return &EagerOps{Tape: tape, mode: mode, watched: make(map[*vars.Variable]*eager.Value)}
}

// Name identifies the backend.
func (e *EagerOps) Name() string { return "define-by-run" }

// Mode reports build vs run.
func (e *EagerOps) Mode() Mode { return e.mode }

func v(x Ref) *eager.Value { return x.(*eager.Value) }

// ShapeOf returns the concrete tensor shape.
func (e *EagerOps) ShapeOf(x Ref) []int { return v(x).T.Shape() }

// Const wraps a tensor.
func (e *EagerOps) Const(t *tensor.Tensor) Ref { return eager.Const(t) }

// ConstScalar wraps a scalar.
func (e *EagerOps) ConstScalar(x float64) Ref { return eager.ConstScalar(x) }

// VarRead watches (once per pass) and returns the variable's value.
func (e *EagerOps) VarRead(vr *vars.Variable) Ref {
	if w, ok := e.watched[vr]; ok {
		return w
	}
	w := e.Tape.Watch(vr)
	e.watched[vr] = w
	return w
}

// Add computes a+b.
func (e *EagerOps) Add(a, b Ref) Ref { return e.Tape.Add(v(a), v(b)) }

// Sub computes a-b.
func (e *EagerOps) Sub(a, b Ref) Ref { return e.Tape.Sub(v(a), v(b)) }

// Mul computes a*b.
func (e *EagerOps) Mul(a, b Ref) Ref { return e.Tape.Mul(v(a), v(b)) }

// Div computes a/b.
func (e *EagerOps) Div(a, b Ref) Ref { return e.Tape.Div(v(a), v(b)) }

// Neg computes -x.
func (e *EagerOps) Neg(x Ref) Ref { return e.Tape.Neg(v(x)) }

// Exp computes e**x.
func (e *EagerOps) Exp(x Ref) Ref { return e.Tape.Exp(v(x)) }

// Log computes ln(x).
func (e *EagerOps) Log(x Ref) Ref { return e.Tape.Log(v(x)) }

// Sqrt computes sqrt(x).
func (e *EagerOps) Sqrt(x Ref) Ref { return e.Tape.Sqrt(v(x)) }

// Square computes x².
func (e *EagerOps) Square(x Ref) Ref { return e.Tape.Square(v(x)) }

// Abs computes |x|.
func (e *EagerOps) Abs(x Ref) Ref { return e.Tape.Abs(v(x)) }

// Relu computes max(x,0).
func (e *EagerOps) Relu(x Ref) Ref { return e.Tape.Relu(v(x)) }

// Tanh computes tanh(x).
func (e *EagerOps) Tanh(x Ref) Ref { return e.Tape.Tanh(v(x)) }

// Sigmoid computes σ(x).
func (e *EagerOps) Sigmoid(x Ref) Ref { return e.Tape.Sigmoid(v(x)) }

// Scale computes x*s.
func (e *EagerOps) Scale(x Ref, s float64) Ref { return e.Tape.Scale(v(x), s) }

// AddScalar computes x+s.
func (e *EagerOps) AddScalar(x Ref, s float64) Ref { return e.Tape.AddScalar(v(x), s) }

// OneMinus computes 1-x.
func (e *EagerOps) OneMinus(x Ref) Ref { return e.Tape.OneMinus(v(x)) }

// Clip computes clip(x, lo, hi).
func (e *EagerOps) Clip(x Ref, lo, hi float64) Ref { return e.Tape.Clip(v(x), lo, hi) }

// Maximum computes max(a,b).
func (e *EagerOps) Maximum(a, b Ref) Ref { return e.Tape.Maximum(v(a), v(b)) }

// Minimum computes min(a,b).
func (e *EagerOps) Minimum(a, b Ref) Ref { return e.Tape.Minimum(v(a), v(b)) }

// GreaterEqual computes a>=b.
func (e *EagerOps) GreaterEqual(a, b Ref) Ref { return e.Tape.GreaterEqual(v(a), v(b)) }

// LessEqual computes a<=b.
func (e *EagerOps) LessEqual(a, b Ref) Ref { return e.Tape.LessEqual(v(a), v(b)) }

// Where computes select(cond, a, b).
func (e *EagerOps) Where(cond, a, b Ref) Ref { return e.Tape.Where(v(cond), v(a), v(b)) }

// StopGradient detaches x.
func (e *EagerOps) StopGradient(x Ref) Ref { return e.Tape.StopGradient(v(x)) }

// MatMul computes a matrix product.
func (e *EagerOps) MatMul(a, b Ref) Ref { return e.Tape.MatMul(v(a), v(b)) }

// Conv2D computes an NHWC convolution.
func (e *EagerOps) Conv2D(x, f Ref, p tensor.ConvParams) Ref {
	return e.Tape.Conv2D(v(x), v(f), p)
}

// Sum reduces all elements.
func (e *EagerOps) Sum(x Ref) Ref { return e.Tape.Sum(v(x)) }

// Mean reduces all elements to their mean.
func (e *EagerOps) Mean(x Ref) Ref { return e.Tape.Mean(v(x)) }

// SumAxis sums along one axis.
func (e *EagerOps) SumAxis(x Ref, axis int, keep bool) Ref {
	return e.Tape.SumAxis(v(x), axis, keep)
}

// MeanAxis averages along one axis.
func (e *EagerOps) MeanAxis(x Ref, axis int, keep bool) Ref {
	return e.Tape.MeanAxis(v(x), axis, keep)
}

// MaxAxis maxes along one axis.
func (e *EagerOps) MaxAxis(x Ref, axis int, keep bool) Ref {
	return e.Tape.MaxAxis(v(x), axis, keep)
}

// ArgMaxAxis computes argmax indices.
func (e *EagerOps) ArgMaxAxis(x Ref, axis int) Ref { return e.Tape.ArgMaxAxis(v(x), axis) }

// Softmax computes a last-axis softmax.
func (e *EagerOps) Softmax(x Ref) Ref { return e.Tape.Softmax(v(x)) }

// LogSoftmax computes a last-axis log-softmax.
func (e *EagerOps) LogSoftmax(x Ref) Ref { return e.Tape.LogSoftmax(v(x)) }

// Reshape reshapes x.
func (e *EagerOps) Reshape(x Ref, shape ...int) Ref { return e.Tape.Reshape(v(x), shape...) }

// FlattenBatch flattens all but the batch dim.
func (e *EagerOps) FlattenBatch(x Ref) Ref { return e.Tape.FlattenBatch(v(x)) }

// Concat concatenates along axis.
func (e *EagerOps) Concat(axis int, xs ...Ref) Ref {
	vsx := make([]*eager.Value, len(xs))
	for i, x := range xs {
		vsx[i] = v(x)
	}
	return e.Tape.Concat(axis, vsx...)
}

// Transpose permutes dimensions.
func (e *EagerOps) Transpose(x Ref, perm ...int) Ref { return e.Tape.Transpose(v(x), perm...) }

// TakeAlongLastAxis selects per-row elements.
func (e *EagerOps) TakeAlongLastAxis(x, idx Ref) Ref {
	return e.Tape.TakeAlongLastAxis(v(x), v(idx))
}

// GatherRows gathers table rows.
func (e *EagerOps) GatherRows(table, idx Ref) Ref { return e.Tape.GatherRows(v(table), v(idx)) }

// OneHot one-hot encodes indices.
func (e *EagerOps) OneHot(idx Ref, depth int) Ref { return e.Tape.OneHot(v(idx), depth) }

// Stateful runs fn immediately in ModeRun. In ModeBuild it is skipped and a
// zero tensor of the declared shape (unknown dims as 1) is returned, so
// artificial build inputs never touch component state.
func (e *EagerOps) Stateful(name string, outShape []int, fn StatefulFn, ins ...Ref) Ref {
	if e.mode == ModeBuild {
		shape := make([]int, len(outShape))
		for i, d := range outShape {
			if d < 0 {
				d = 1
			}
			shape[i] = d
		}
		return eager.Const(tensor.New(shape...))
	}
	ts := make([]*tensor.Tensor, len(ins))
	for i, x := range ins {
		ts[i] = v(x).T
	}
	out, err := fn(ts)
	if err != nil {
		panic(&StatefulError{OpName: name, Err: err})
	}
	return eager.Const(out)
}

// StatefulMulti runs fn immediately in ModeRun; in ModeBuild it returns zero
// tensors of the declared shapes without invoking fn.
func (e *EagerOps) StatefulMulti(name string, outShapes [][]int, fn StatefulMultiFn, ins ...Ref) []Ref {
	out := make([]Ref, len(outShapes))
	if e.mode == ModeBuild {
		for i, os := range outShapes {
			shape := make([]int, len(os))
			for j, d := range os {
				if d < 0 {
					d = 1
				}
				shape[j] = d
			}
			out[i] = eager.Const(tensor.New(shape...))
		}
		return out
	}
	ts := make([]*tensor.Tensor, len(ins))
	for i, x := range ins {
		ts[i] = v(x).T
	}
	res, err := fn(ts)
	if err != nil {
		panic(&StatefulError{OpName: name, Err: err})
	}
	if len(res) != len(outShapes) {
		panic(fmt.Sprintf("backend: stateful %q returned %d outputs, want %d",
			name, len(res), len(outShapes)))
	}
	for i, t := range res {
		out[i] = eager.Const(t)
	}
	return out
}

// Gradients runs the tape backward from loss and returns per-variable grads.
// During the build pass gradients are structural only: zero tensors shaped
// like the variables are returned without running autodiff.
func (e *EagerOps) Gradients(loss Ref, vsl []*vars.Variable) []Ref {
	if e.mode == ModeBuild {
		out := make([]Ref, len(vsl))
		for i, vr := range vsl {
			out[i] = eager.Const(tensor.New(vr.Val.Shape()...))
		}
		return out
	}
	if e.Tape == nil {
		panic("backend: Gradients on a no-grad define-by-run pass")
	}
	e.Tape.Backward(v(loss))
	out := make([]Ref, len(vsl))
	for i, vr := range vsl {
		g := e.Tape.GradOf(vr)
		if g == nil {
			g = tensor.New(vr.Val.Shape()...)
		}
		out[i] = eager.Const(g)
	}
	return out
}

// AssignVar stores val into the variable immediately (in ModeRun).
func (e *EagerOps) AssignVar(vr *vars.Variable, val Ref) Ref {
	if e.mode == ModeRun {
		vr.Set(v(val).T)
	}
	return val
}

// AddToVar applies v += scale*delta immediately (in ModeRun).
func (e *EagerOps) AddToVar(vr *vars.Variable, delta Ref, scale float64) Ref {
	if e.mode == ModeRun {
		tensor.AxpyInPlace(vr.Val, scale, v(delta).T)
	}
	return delta
}

// Group returns scalar 0 (everything already executed eagerly).
func (e *EagerOps) Group(...Ref) Ref { return eager.ConstScalar(0) }

// Eval returns the concrete tensor behind x.
func (e *EagerOps) Eval(x Ref) *tensor.Tensor { return v(x).T }

// SetDefaultDevice records the device (define-by-run executes on host; the
// device is kept for accounting parity with the static backend).
func (e *EagerOps) SetDefaultDevice(d string) { e.device = d }

// DefaultDevice returns the recorded device.
func (e *EagerOps) DefaultDevice() string { return e.device }

// SliceCols selects columns [lo, hi) of the last axis.
func (e *EagerOps) SliceCols(x Ref, lo, hi int) Ref { return e.Tape.SliceCols(v(x), lo, hi) }

// ShardRows selects shard i of k along the leading axis.
func (e *EagerOps) ShardRows(x Ref, i, k int) Ref { return e.Tape.ShardRows(v(x), i, k) }

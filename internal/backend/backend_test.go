package backend

import (
	"errors"
	"math/rand"
	"testing"

	"rlgraph/internal/eager"
	"rlgraph/internal/graph"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

func TestStaticOpsEmitNodesWithoutComputing(t *testing.T) {
	g := graph.New()
	ops := NewStaticOps(g)
	if ops.Name() != "static" || ops.Mode() != ModeBuild {
		t.Fatal("identity wrong")
	}
	a := ops.Const(tensor.FromSlice([]float64{1, 2}, 2))
	b := ops.Scale(a, 3)
	if ops.Eval(b) != nil {
		t.Fatal("static Eval should be nil")
	}
	sess := graph.NewSession(g)
	out, err := sess.Run1(b.(*graph.Node), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.FromSlice([]float64{3, 6}, 2)) {
		t.Fatalf("got %v", out)
	}
}

func TestEagerOpsComputeImmediately(t *testing.T) {
	ops := NewEagerOps(nil, ModeRun)
	if ops.Name() != "define-by-run" || ops.Mode() != ModeRun {
		t.Fatal("identity wrong")
	}
	out := ops.Add(ops.ConstScalar(2), ops.ConstScalar(3))
	if ops.Eval(out).Item() != 5 {
		t.Fatal("eager did not compute")
	}
}

func TestVarReadSharedPerPass(t *testing.T) {
	v := vars.New("w", tensor.Scalar(1))
	g := graph.New()
	sops := NewStaticOps(g)
	if sops.VarRead(v) != sops.VarRead(v) {
		t.Fatal("static VarRead not cached")
	}
	eops := NewEagerOps(eager.NewTape(), ModeRun)
	if eops.VarRead(v) != eops.VarRead(v) {
		t.Fatal("eager VarRead not cached")
	}
}

func TestStatefulSkippedDuringEagerBuild(t *testing.T) {
	ops := NewEagerOps(nil, ModeBuild)
	ran := false
	out := ops.Stateful("side", []int{-1, 3}, func([]*tensor.Tensor) (*tensor.Tensor, error) {
		ran = true
		return tensor.New(1), nil
	})
	if ran {
		t.Fatal("stateful ran during build")
	}
	if !tensor.SameShape(ops.Eval(out).Shape(), []int{1, 3}) {
		t.Fatalf("build placeholder shape = %v", ops.Eval(out).Shape())
	}
	outs := ops.StatefulMulti("multi", [][]int{{-1}, {2}}, func([]*tensor.Tensor) ([]*tensor.Tensor, error) {
		ran = true
		return nil, nil
	})
	if ran || len(outs) != 2 {
		t.Fatal("stateful multi misbehaved during build")
	}
}

func TestStatefulErrorsSurfaceAsTypedPanic(t *testing.T) {
	ops := NewEagerOps(nil, ModeRun)
	defer func() {
		r := recover()
		se, ok := r.(*StatefulError)
		if !ok {
			t.Fatalf("panic type %T", r)
		}
		if se.OpName != "boom" || !errors.Is(se, se.Err) {
			t.Fatalf("bad error: %v", se)
		}
	}()
	ops.Stateful("boom", []int{}, func([]*tensor.Tensor) (*tensor.Tensor, error) {
		return nil, errors.New("kaput")
	})
}

func TestGradientsZeroDuringEagerBuild(t *testing.T) {
	ops := NewEagerOps(nil, ModeBuild)
	v := vars.New("w", tensor.New(2, 2))
	loss := ops.ConstScalar(1)
	gs := ops.Gradients(loss, []*vars.Variable{v})
	if !tensor.SameShape(ops.Eval(gs[0]).Shape(), []int{2, 2}) {
		t.Fatal("build-mode gradient shape wrong")
	}
}

func TestAssignAndAddToVarModes(t *testing.T) {
	// Build mode must not mutate; run mode must.
	v := vars.New("w", tensor.Scalar(1))
	bops := NewEagerOps(nil, ModeBuild)
	bops.AssignVar(v, bops.ConstScalar(9))
	bops.AddToVar(v, bops.ConstScalar(9), 1)
	if v.Val.Item() != 1 {
		t.Fatal("build mode mutated variable")
	}
	rops := NewEagerOps(nil, ModeRun)
	rops.AssignVar(v, rops.ConstScalar(9))
	if v.Val.Item() != 9 {
		t.Fatal("run-mode assign ignored")
	}
	rops.AddToVar(v, rops.ConstScalar(1), 2)
	if v.Val.Item() != 11 {
		t.Fatalf("AddToVar result = %g", v.Val.Item())
	}
}

func TestDefaultDeviceBracketing(t *testing.T) {
	g := graph.New()
	sops := NewStaticOps(g)
	sops.SetDefaultDevice("gpu0")
	n := sops.ConstScalar(1).(*graph.Node)
	if n.Device() != "gpu0" || sops.DefaultDevice() != "gpu0" {
		t.Fatal("static device not applied")
	}
	eops := NewEagerOps(nil, ModeRun)
	eops.SetDefaultDevice("cpu0")
	if eops.DefaultDevice() != "cpu0" {
		t.Fatal("eager device not recorded")
	}
}

// TestOpsParityOnRandomPrograms runs the same composite graph-fn program on
// both backends and compares results — the cross-backend contract every
// component relies on.
func TestOpsParityOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 0, 1, 3, 4)
	y := tensor.RandNormal(rng, 0, 1, 3, 4)

	program := func(ops Ops, xr, yr Ref) Ref {
		h := ops.Tanh(ops.Add(ops.Mul(xr, yr), ops.Scale(xr, 0.5)))
		s := ops.Softmax(h)
		m := ops.MeanAxis(ops.Square(ops.Sub(s, yr)), -1, false)
		return ops.Sum(ops.Maximum(m, ops.ConstScalar(0.01)))
	}

	// Static.
	g := graph.New()
	sops := NewStaticOps(g)
	sref := program(sops, sops.Const(x), sops.Const(y))
	sess := graph.NewSession(g)
	sval, err := sess.Run1(sref.(*graph.Node), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Eager.
	eops := NewEagerOps(nil, ModeRun)
	eref := program(eops, eops.Const(x), eops.Const(y))
	eval := eops.Eval(eref)

	if !sval.AllClose(eval, 1e-12) {
		t.Fatalf("backends disagree: %v vs %v", sval, eval)
	}
}

func TestShapeOfBothBackends(t *testing.T) {
	g := graph.New()
	sops := NewStaticOps(g)
	ph := graph.Placeholder(g, "x", []int{-1, 7})
	if got := sops.ShapeOf(ph); !tensor.SameShape(got, []int{-1, 7}) {
		t.Fatalf("static shape = %v", got)
	}
	eops := NewEagerOps(nil, ModeRun)
	if got := eops.ShapeOf(eops.Const(tensor.New(2, 7))); !tensor.SameShape(got, []int{2, 7}) {
		t.Fatalf("eager shape = %v", got)
	}
}

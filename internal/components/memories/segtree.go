package memories

import "math"

// SegmentTree is an array-backed binary segment tree over a fixed number of
// slots, supporting point updates and range reductions in O(log n). It backs
// prioritized replay's proportional sampling (sum tree) and importance
// weights (min tree) — the paper's example sub-component (Fig. 2).
type SegmentTree struct {
	size   int // number of leaves (power of two ≥ requested capacity)
	values []float64
	op     func(a, b float64) float64
	ident  float64
}

// NewSumTree returns a segment tree reducing with addition.
func NewSumTree(capacity int) *SegmentTree {
	return newSegmentTree(capacity, func(a, b float64) float64 { return a + b }, 0)
}

// NewMinTree returns a segment tree reducing with minimum.
func NewMinTree(capacity int) *SegmentTree {
	return newSegmentTree(capacity, math.Min, math.Inf(1))
}

func newSegmentTree(capacity int, op func(a, b float64) float64, ident float64) *SegmentTree {
	size := 1
	for size < capacity {
		size *= 2
	}
	st := &SegmentTree{size: size, values: make([]float64, 2*size), op: op, ident: ident}
	for i := range st.values {
		st.values[i] = ident
	}
	return st
}

// Set writes v at leaf i and updates ancestors.
func (st *SegmentTree) Set(i int, v float64) {
	idx := i + st.size
	st.values[idx] = v
	for idx > 1 {
		idx /= 2
		st.values[idx] = st.op(st.values[2*idx], st.values[2*idx+1])
	}
}

// Get returns the value at leaf i.
func (st *SegmentTree) Get(i int) float64 { return st.values[i+st.size] }

// Reduce returns the reduction over all leaves.
func (st *SegmentTree) Reduce() float64 { return st.values[1] }

// ReduceRange reduces leaves [lo, hi).
func (st *SegmentTree) ReduceRange(lo, hi int) float64 {
	res := st.ident
	lo += st.size
	hi += st.size
	for lo < hi {
		if lo&1 == 1 {
			res = st.op(res, st.values[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			res = st.op(res, st.values[hi])
		}
		lo /= 2
		hi /= 2
	}
	return res
}

// FindPrefixSum returns the smallest leaf index i such that the sum of
// leaves [0, i] is >= p. Only valid for sum trees with non-negative leaves.
func (st *SegmentTree) FindPrefixSum(p float64) int {
	idx := 1
	for idx < st.size {
		left := 2 * idx
		if st.values[left] >= p {
			idx = left
		} else {
			p -= st.values[left]
			idx = left + 1
		}
	}
	return idx - st.size
}

// Capacity returns the leaf count (power of two).
func (st *SegmentTree) Capacity() int { return st.size }

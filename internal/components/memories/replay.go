package memories

import (
	"fmt"
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

// RingReplay is a uniform FIFO replay memory over records with a fixed
// number of fields (e.g. state, action, reward, next-state, terminal). The
// record layout is inferred from the spaces flowing into the insert API at
// build time; buffers are allocated then — the memory cannot define its
// storage before it knows shapes and types of buffer contents (paper §3.3).
//
// API methods:
//
//	insert(f0..fN-1) -> size          // batched records
//	sample(batch)    -> f0..fN-1      // uniform without replacement bias
type RingReplay struct {
	*component.Component

	capacity  int
	numFields int
	rng       *rand.Rand

	storage *ringStorage
}

// NewRingReplay returns a replay memory for numFields-field records.
func NewRingReplay(name string, capacity, numFields int, seed int64) *RingReplay {
	m := &RingReplay{
		Component: component.New(name),
		capacity:  capacity,
		numFields: numFields,
		rng:       rand.New(rand.NewSource(seed)),
	}
	m.SetImpl(m)
	m.SetVarCreatorFns("insert")
	m.DefineAPI("insert", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "insert", 1, m.insertFn, in...)
	})
	m.DefineAPI("sample", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "sample", m.numFields, m.sampleFn, in...)
	})
	return m
}

// CreateVariables allocates the ring buffers from the insert record spaces.
func (m *RingReplay) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	if len(inSpaces) != m.numFields {
		return fmt.Errorf("memories: %q configured for %d fields, insert saw %d",
			m.Name(), m.numFields, len(inSpaces))
	}
	m.storage = newRingStorage(m.capacity, fieldShapesFromSpaces(inSpaces))
	return nil
}

func (m *RingReplay) insertFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	out := ops.Stateful("MemInsert", []int{}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
		if m.storage == nil {
			return nil, fmt.Errorf("memories: %q sampled/inserted before buffers exist", m.Name())
		}
		m.storage.insertBatch(ts)
		return tensor.Scalar(float64(m.storage.size)), nil
	}, in...)
	return []backend.Ref{out}
}

func (m *RingReplay) sampleFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	return ops.StatefulMulti("MemSample", m.sampleShapes(), func(ts []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if m.storage == nil || m.storage.size == 0 {
			return nil, fmt.Errorf("memories: %q is empty", m.Name())
		}
		batch := int(ts[0].Item())
		slots := make([]int, batch)
		for i := range slots {
			slots[i] = m.rng.Intn(m.storage.size)
		}
		out := make([]*tensor.Tensor, m.numFields)
		for f := 0; f < m.numFields; f++ {
			out[f] = m.storage.gather(f, slots)
		}
		return out, nil
	}, in...)
}

// sampleShapes declares [-1, fieldShape...] output shapes. The storage must
// exist (insert compiles first); the builder reports a clear error
// otherwise.
func (m *RingReplay) sampleShapes() [][]int {
	if m.storage == nil {
		panic(fmt.Sprintf("memories: %q sample built before insert — register/build the "+
			"insert-producing API first (input-incomplete component)", m.Name()))
	}
	out := make([][]int, m.numFields)
	for f, s := range m.storage.rowShapes {
		out[f] = append([]int{-1}, s...)
	}
	return out
}

// Size returns the number of stored records.
func (m *RingReplay) Size() int {
	if m.storage == nil {
		return 0
	}
	return m.storage.size
}

// Capacity returns the configured capacity.
func (m *RingReplay) Capacity() int { return m.capacity }

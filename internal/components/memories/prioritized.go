package memories

import (
	"fmt"
	"math"
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

// PrioritizedReplay implements proportional prioritized experience replay
// (Schaul et al.; Horgan et al. for the distributed Ape-X variant): records
// are sampled with probability p_i^α / Σp^α and weighted by importance
// weights (N·P(i))^-β normalized by the maximum weight. Priority order is
// maintained by sum/min segment-tree sub-components — the memory component
// of the paper's Fig. 2 with its three API methods.
//
// API methods:
//
//	insert(f0..fN-1)            -> size    // new records get max priority
//	insert_with_priorities(f0..fN-1, prio) -> size  // Ape-X worker-side priorities
//	sample(batch)               -> f0..fN-1, indices, weights
//	update(indices, priorities) -> ok
type PrioritizedReplay struct {
	*component.Component

	capacity  int
	numFields int
	alpha     float64
	beta      float64
	epsilon   float64
	rng       *rand.Rand

	storage *ringStorage
	sum     *SegmentTree
	min     *SegmentTree
	maxPrio float64

	// segTree is the nested sub-component handle (structure only; the trees
	// above are its state), mirroring Fig. 2's SegmentTree sub-component.
	segTree *component.Component
}

// NewPrioritizedReplay returns a prioritized memory with the usual α/β
// hyper-parameters.
func NewPrioritizedReplay(name string, capacity, numFields int, alpha, beta float64, seed int64) *PrioritizedReplay {
	m := &PrioritizedReplay{
		Component: component.New(name),
		capacity:  capacity,
		numFields: numFields,
		alpha:     alpha,
		beta:      beta,
		epsilon:   1e-6,
		rng:       rand.New(rand.NewSource(seed)),
		maxPrio:   1,
	}
	m.segTree = component.New("segment-tree")
	m.AddSub(m.segTree)
	m.SetImpl(m)
	m.SetVarCreatorFns("insert", "insert_with_priorities")

	m.DefineAPI("insert", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "insert", 1, m.insertFn(false), in...)
	})
	m.DefineAPI("insert_with_priorities", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "insert_with_priorities", 1, m.insertFn(true), in...)
	})
	m.DefineAPI("sample", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "sample", m.numFields+2, m.sampleFn, in...)
	})
	m.DefineAPI("update", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "update", 1, m.updateFn, in...)
	})
	return m
}

// CreateVariables allocates buffers and trees from the insert record spaces.
// Priority inputs (the trailing space of insert_with_priorities) are not
// part of the stored record.
func (m *PrioritizedReplay) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	if len(inSpaces) != m.numFields && len(inSpaces) != m.numFields+1 {
		return fmt.Errorf("memories: %q configured for %d fields, insert saw %d spaces",
			m.Name(), m.numFields, len(inSpaces))
	}
	m.storage = newRingStorage(m.capacity, fieldShapesFromSpaces(inSpaces[:m.numFields]))
	m.sum = NewSumTree(m.capacity)
	m.min = NewMinTree(m.capacity)
	return nil
}

func (m *PrioritizedReplay) insertFn(withPrios bool) component.GraphFn {
	return func(ops backend.Ops, in []backend.Ref) []backend.Ref {
		out := ops.Stateful("PrioInsert", []int{}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
			if m.storage == nil {
				return nil, fmt.Errorf("memories: %q used before buffers exist", m.Name())
			}
			fields := ts
			var prios *tensor.Tensor
			if withPrios {
				fields = ts[:m.numFields]
				prios = ts[m.numFields]
			}
			slots := m.storage.insertBatch(fields)
			for i, slot := range slots {
				p := m.maxPrio
				if prios != nil {
					p = prios.Data()[i] + m.epsilon
				}
				pa := math.Pow(p, m.alpha)
				m.sum.Set(slot, pa)
				m.min.Set(slot, pa)
				if p > m.maxPrio {
					m.maxPrio = p
				}
			}
			return tensor.Scalar(float64(m.storage.size)), nil
		}, in...)
		return []backend.Ref{out}
	}
}

func (m *PrioritizedReplay) sampleFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	shapes := m.sampleShapes()
	return ops.StatefulMulti("PrioSample", shapes, func(ts []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if m.storage == nil || m.storage.size == 0 {
			return nil, fmt.Errorf("memories: %q is empty", m.Name())
		}
		batch := int(ts[0].Item())
		total := m.sum.Reduce()
		slots := make([]int, batch)
		weights := make([]float64, batch)
		n := float64(m.storage.size)
		minP := m.min.Reduce() / total
		maxW := math.Pow(n*minP, -m.beta)
		for i := range slots {
			p := m.rng.Float64() * total
			slot := m.sum.FindPrefixSum(p)
			if slot >= m.storage.size {
				slot = m.storage.size - 1
			}
			slots[i] = slot
			prob := m.sum.Get(slot) / total
			weights[i] = math.Pow(n*prob, -m.beta) / maxW
		}
		out := make([]*tensor.Tensor, m.numFields+2)
		for f := 0; f < m.numFields; f++ {
			out[f] = m.storage.gather(f, slots)
		}
		idxT := make([]float64, batch)
		for i, s := range slots {
			idxT[i] = float64(s)
		}
		out[m.numFields] = tensor.FromSlice(idxT, batch)
		out[m.numFields+1] = tensor.FromSlice(weights, batch)
		return out, nil
	}, in...)
}

func (m *PrioritizedReplay) sampleShapes() [][]int {
	if m.storage == nil {
		panic(fmt.Sprintf("memories: %q sample built before insert — build the insert API first", m.Name()))
	}
	out := make([][]int, m.numFields+2)
	for f, s := range m.storage.rowShapes {
		out[f] = append([]int{-1}, s...)
	}
	out[m.numFields] = []int{-1}   // indices
	out[m.numFields+1] = []int{-1} // weights
	return out
}

func (m *PrioritizedReplay) updateFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	out := ops.Stateful("PrioUpdate", []int{}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
		idxs, prios := ts[0], ts[1]
		for i := 0; i < idxs.Size(); i++ {
			slot := int(idxs.Data()[i])
			p := math.Abs(prios.Data()[i]) + m.epsilon
			pa := math.Pow(p, m.alpha)
			m.sum.Set(slot, pa)
			m.min.Set(slot, pa)
			if p > m.maxPrio {
				m.maxPrio = p
			}
		}
		return tensor.Scalar(1), nil
	}, in...)
	return []backend.Ref{out}
}

// Size returns the number of stored records.
func (m *PrioritizedReplay) Size() int {
	if m.storage == nil {
		return 0
	}
	return m.storage.size
}

// MaxPriority returns the running maximum priority (used for fresh inserts).
func (m *PrioritizedReplay) MaxPriority() float64 { return m.maxPrio }

package memories

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlgraph/internal/component"
	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func TestSegmentTreeSumBasics(t *testing.T) {
	st := NewSumTree(6)
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		st.Set(i, v)
	}
	if st.Reduce() != 21 {
		t.Fatalf("total = %g", st.Reduce())
	}
	if st.ReduceRange(1, 4) != 9 {
		t.Fatalf("range = %g", st.ReduceRange(1, 4))
	}
	st.Set(2, 0)
	if st.Reduce() != 18 {
		t.Fatalf("after update total = %g", st.Reduce())
	}
}

func TestSegmentTreeMin(t *testing.T) {
	st := NewMinTree(5)
	for i, v := range []float64{5, 3, 8, 1, 9} {
		st.Set(i, v)
	}
	if st.Reduce() != 1 {
		t.Fatalf("min = %g", st.Reduce())
	}
	st.Set(3, 10)
	if st.Reduce() != 3 {
		t.Fatalf("min after update = %g", st.Reduce())
	}
}

func TestFindPrefixSum(t *testing.T) {
	st := NewSumTree(4)
	for i, v := range []float64{1, 2, 3, 4} {
		st.Set(i, v)
	}
	cases := []struct {
		p    float64
		want int
	}{{0.5, 0}, {1.0, 0}, {1.5, 1}, {3.0, 1}, {3.5, 2}, {6.0, 2}, {9.9, 3}}
	for _, c := range cases {
		if got := st.FindPrefixSum(c.p); got != c.want {
			t.Errorf("FindPrefixSum(%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

// Property: the sum tree's total always equals the direct sum of leaves, and
// FindPrefixSum returns a leaf whose cumulative range covers p.
func TestSegmentTreeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		st := NewSumTree(n)
		leaves := make([]float64, n)
		for i := range leaves {
			leaves[i] = rng.Float64() * 10
			st.Set(i, leaves[i])
		}
		direct := 0.0
		for _, v := range leaves {
			direct += v
		}
		if math.Abs(st.Reduce()-direct) > 1e-9 {
			return false
		}
		p := rng.Float64() * direct
		idx := st.FindPrefixSum(p)
		if idx < 0 || idx >= st.Capacity() {
			return false
		}
		// Cumulative sum up to idx-1 must be < p <= cumulative up to idx
		// (within fp tolerance).
		cum := 0.0
		for i := 0; i < idx; i++ {
			cum += leaves[i]
		}
		var leaf float64
		if idx < n {
			leaf = leaves[idx]
		}
		return cum < p+1e-9 && p <= cum+leaf+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// replaySpaces declares the (s, a, r) record layout used in memory tests.
func replaySpaces() []spaces.Space {
	return []spaces.Space{
		spaces.NewFloatBox(4).WithBatchRank(),
		spaces.NewIntBox(3).WithBatchRank(),
		spaces.NewFloatBox().WithBatchRank(),
	}
}

func batchScalar(v float64) *tensor.Tensor { return tensor.Scalar(v) }

func TestRingReplayInsertSampleBothBackends(t *testing.T) {
	for _, b := range exec.Backends() {
		t.Run(b, func(t *testing.T) {
			m := NewRingReplay("mem", 8, 3, 1)
			ct, err := exec.NewComponentTest(b, m.Component, exec.InputSpaces{
				"insert": replaySpaces(),
				"sample": {spaces.NewFloatBox()},
			})
			if err != nil {
				t.Fatal(err)
			}
			s := tensor.Arange(0, 8).Reshape(2, 4)
			a := tensor.FromSlice([]float64{0, 2}, 2)
			r := tensor.FromSlice([]float64{1.5, -0.5}, 2)
			size, err := ct.Test1("insert", s, a, r)
			if err != nil {
				t.Fatal(err)
			}
			if size.Item() != 2 {
				t.Fatalf("size = %g", size.Item())
			}
			outs, err := ct.Test("sample", batchScalar(5))
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.SameShape(outs[0].Shape(), []int{5, 4}) {
				t.Fatalf("state shape = %v", outs[0].Shape())
			}
			// All sampled rewards must be one of the inserted values.
			for _, v := range outs[2].Data() {
				if v != 1.5 && v != -0.5 {
					t.Fatalf("sampled unknown reward %g", v)
				}
			}
		})
	}
}

func TestRingReplayFIFOOverwrite(t *testing.T) {
	m := NewRingReplay("mem", 4, 1, 1)
	ct, err := exec.NewComponentTest("define-by-run", m.Component, exec.InputSpaces{
		"insert": {spaces.NewFloatBox().WithBatchRank()},
		"sample": {spaces.NewFloatBox()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Insert 6 records into capacity 4: values 0..5; 0 and 1 must be gone.
	if _, err := ct.Test("insert", tensor.Arange(0, 6).Reshape(6)); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 {
		t.Fatalf("size = %d", m.Size())
	}
	outs, err := ct.Test("sample", batchScalar(64))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range outs[0].Data() {
		if v < 2 {
			t.Fatalf("sampled overwritten record %g", v)
		}
	}
}

func TestRingReplaySampleBeforeInsertErrors(t *testing.T) {
	// A root exposing only the sample path never makes the memory
	// input-complete: the build must fail loudly (constraint violation,
	// paper §3.3) instead of allocating bogus buffers.
	m := NewRingReplay("mem", 4, 1, 1)
	root := component.New("root")
	root.AddSub(m.Component)
	root.DefineAPI("draw", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.Call(ctx, "sample", in...)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected build panic for input-incomplete memory")
		}
	}()
	_, _ = exec.NewComponentTest("static", root, exec.InputSpaces{
		"draw": {spaces.NewFloatBox()},
	})
}

func TestPrioritizedReplaySampleSkewsTowardHighPriority(t *testing.T) {
	m := NewPrioritizedReplay("prio", 8, 1, 0.8, 0.4, 3)
	ct, err := exec.NewComponentTest("define-by-run", m.Component, exec.InputSpaces{
		"insert":                 {spaces.NewFloatBox().WithBatchRank()},
		"insert_with_priorities": {spaces.NewFloatBox().WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
		"sample":                 {spaces.NewFloatBox()},
		"update":                 {spaces.NewFloatBox().WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two records: value 0 with tiny priority, value 1 with huge priority.
	vals := tensor.FromSlice([]float64{0, 1}, 2)
	prios := tensor.FromSlice([]float64{0.001, 10}, 2)
	if _, err := ct.Test("insert_with_priorities", vals, prios); err != nil {
		t.Fatal(err)
	}
	outs, err := ct.Test("sample", batchScalar(200))
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range outs[0].Data() {
		if v == 1 {
			ones++
		}
	}
	if ones < 180 {
		t.Fatalf("high-priority record sampled only %d/200 times", ones)
	}
	// Importance weights: the rarely-sampled record has weight 1 (max),
	// the frequent record less (or equal).
	indices, weights := outs[1], outs[2]
	for i, idx := range indices.Data() {
		w := weights.Data()[i]
		if idx == 1 && w > 1.0+1e-9 {
			t.Fatalf("frequent record weight %g > 1", w)
		}
	}
}

func TestPrioritizedReplayUpdateChangesSampling(t *testing.T) {
	m := NewPrioritizedReplay("prio", 8, 1, 1.0, 0.5, 4)
	ct, err := exec.NewComponentTest("define-by-run", m.Component, exec.InputSpaces{
		"insert": {spaces.NewFloatBox().WithBatchRank()},
		"sample": {spaces.NewFloatBox()},
		"update": {spaces.NewFloatBox().WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("insert", tensor.FromSlice([]float64{0, 1}, 2)); err != nil {
		t.Fatal(err)
	}
	// Crush record 0's priority; boost record 1's.
	if _, err := ct.Test("update",
		tensor.FromSlice([]float64{0, 1}, 2),
		tensor.FromSlice([]float64{0.0001, 50}, 2)); err != nil {
		t.Fatal(err)
	}
	outs, err := ct.Test("sample", batchScalar(100))
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range outs[0].Data() {
		if v == 1 {
			ones++
		}
	}
	if ones < 90 {
		t.Fatalf("updated priorities ignored: %d/100", ones)
	}
}

func TestPrioritizedReplayStaticBackend(t *testing.T) {
	m := NewPrioritizedReplay("prio", 16, 2, 0.6, 0.4, 5)
	ct, err := exec.NewComponentTest("static", m.Component, exec.InputSpaces{
		"insert": {spaces.NewFloatBox(3).WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
		"sample": {spaces.NewFloatBox()},
		"update": {spaces.NewFloatBox().WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	st := tensor.RandNormal(rng, 0, 1, 4, 3)
	rw := tensor.RandNormal(rng, 0, 1, 4)
	if _, err := ct.Test("insert", st, rw); err != nil {
		t.Fatal(err)
	}
	outs, err := ct.Test("sample", batchScalar(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("outputs = %d, want fields+indices+weights = 4", len(outs))
	}
	if !tensor.SameShape(outs[0].Shape(), []int{3, 3}) {
		t.Fatalf("state shape = %v", outs[0].Shape())
	}
	// The component graph includes the segment-tree sub-component (Fig. 2).
	if m.Component.Sub("segment-tree") == nil {
		t.Fatal("segment-tree sub-component missing")
	}
}

// Property: sampled slots always index live records.
func TestPrioritizedSampleIndicesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewPrioritizedReplay("prio", 8, 1, 0.7, 0.5, seed)
		ct, err := exec.NewComponentTest("define-by-run", m.Component, exec.InputSpaces{
			"insert": {spaces.NewFloatBox().WithBatchRank()},
			"sample": {spaces.NewFloatBox()},
			"update": {spaces.NewFloatBox().WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
		})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(6)
		if _, err := ct.Test("insert", tensor.Arange(0, n).Reshape(n)); err != nil {
			return false
		}
		outs, err := ct.Test("sample", batchScalar(10))
		if err != nil {
			return false
		}
		for _, idx := range outs[1].Data() {
			if int(idx) < 0 || int(idx) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Package memories implements replay-memory components: a FIFO ring replay
// and prioritized experience replay with segment-tree priority order (the
// paper's example component, Fig. 2). Memory state lives in native Go
// storage wrapped in stateful graph ops, so one implementation serves both
// the static and define-by-run backends.
package memories

import (
	"fmt"

	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

// ringStorage is fixed-capacity, multi-field row storage with FIFO
// overwrite. Each field holds rows of a fixed shape.
type ringStorage struct {
	capacity  int
	rowShapes [][]int
	rowSizes  []int
	data      [][]float64

	size int
	next int
}

func newRingStorage(capacity int, rowShapes [][]int) *ringStorage {
	rs := &ringStorage{capacity: capacity, rowShapes: rowShapes}
	for _, s := range rowShapes {
		n := tensor.NumElems(s)
		rs.rowSizes = append(rs.rowSizes, n)
		rs.data = append(rs.data, make([]float64, capacity*n))
	}
	return rs
}

// insertBatch copies the batch rows of every field into the ring, returning
// the slot index of each inserted row.
func (rs *ringStorage) insertBatch(fields []*tensor.Tensor) []int {
	if len(fields) != len(rs.data) {
		panic(fmt.Sprintf("memories: insert with %d fields, storage has %d", len(fields), len(rs.data)))
	}
	rows := fields[0].Dim(0)
	idxs := make([]int, rows)
	for r := 0; r < rows; r++ {
		slot := rs.next
		idxs[r] = slot
		for f, t := range fields {
			n := rs.rowSizes[f]
			copy(rs.data[f][slot*n:(slot+1)*n], t.Data()[r*n:(r+1)*n])
		}
		rs.next = (rs.next + 1) % rs.capacity
		if rs.size < rs.capacity {
			rs.size++
		}
	}
	return idxs
}

// gather assembles the rows at the given slots for one field.
func (rs *ringStorage) gather(field int, slots []int) *tensor.Tensor {
	n := rs.rowSizes[field]
	out := make([]float64, len(slots)*n)
	for i, s := range slots {
		copy(out[i*n:(i+1)*n], rs.data[field][s*n:(s+1)*n])
	}
	shape := append([]int{len(slots)}, rs.rowShapes[field]...)
	return tensor.FromSlice(out, shape...)
}

// fieldShapesFromSpaces extracts per-field element shapes from insert input
// spaces (batch ranks dropped).
func fieldShapesFromSpaces(sps []spaces.Space) [][]int {
	out := make([][]int, len(sps))
	for i, sp := range sps {
		out[i] = append([]int(nil), sp.Shape()...)
	}
	return out
}

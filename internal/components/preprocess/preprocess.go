// Package preprocess provides preprocessing components. In RLgraph, pre- and
// post-processing heuristics are first-class components (paper §1, point 4):
// they are built from input spaces and testable in isolation like any other
// part of the graph.
package preprocess

import (
	"fmt"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/tensor"
)

// Rescale multiplies inputs by a constant factor (e.g. 1/255 for pixels).
type Rescale struct {
	*component.Component
	factor float64
}

// NewRescale returns a scaling preprocessor.
func NewRescale(name string, factor float64) *Rescale {
	r := &Rescale{Component: component.New(name), factor: factor}
	r.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return r.GraphFn(ctx, "rescale", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			return []backend.Ref{ops.Scale(refs[0], r.factor)}
		}, in...)
	})
	return r
}

// Grayscale averages the channel axis of NHWC images with luminance weights,
// keeping a single channel.
type Grayscale struct {
	*component.Component
	weights []float64
}

// NewGrayscale returns a channel-averaging preprocessor. Pass nil weights
// for the standard (0.299, 0.587, 0.114) luminance mix.
func NewGrayscale(name string, weights []float64) *Grayscale {
	if weights == nil {
		weights = []float64{0.299, 0.587, 0.114}
	}
	g := &Grayscale{Component: component.New(name), weights: weights}
	g.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return g.GraphFn(ctx, "grayscale", 1, g.fwd, in...)
	})
	return g
}

func (g *Grayscale) fwd(ops backend.Ops, refs []backend.Ref) []backend.Ref {
	shape := ops.ShapeOf(refs[0])
	c := shape[len(shape)-1]
	if c != len(g.weights) {
		panic(fmt.Sprintf("preprocess: grayscale weights for %d channels, input has %d",
			len(g.weights), c))
	}
	w := ops.Const(tensor.FromSlice(append([]float64(nil), g.weights...), c))
	// Weighted channel sum, keeping the channel dim at size 1.
	return []backend.Ref{ops.SumAxis(ops.Mul(refs[0], w), -1, true)}
}

// Clamp limits values to [lo, hi] (e.g. reward clipping).
type Clamp struct {
	*component.Component
	lo, hi float64
}

// NewClamp returns a clipping preprocessor.
func NewClamp(name string, lo, hi float64) *Clamp {
	c := &Clamp{Component: component.New(name), lo: lo, hi: hi}
	c.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return c.GraphFn(ctx, "clamp", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			return []backend.Ref{ops.Clip(refs[0], c.lo, c.hi)}
		}, in...)
	})
	return c
}

// Stack chains preprocessors, exposing one "call" API over the sequence.
type Stack struct {
	*component.Component
	stages []*component.Component
}

// NewStack chains the given preprocessor components (each exposing "call").
func NewStack(name string, stages ...*component.Component) *Stack {
	s := &Stack{Component: component.New(name), stages: stages}
	for _, st := range stages {
		s.AddSub(st)
	}
	s.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		out := in
		for _, st := range s.stages {
			out = st.Call(ctx, "call", out...)
		}
		return out
	})
	return s
}

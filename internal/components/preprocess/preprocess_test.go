package preprocess

import (
	"testing"

	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func TestRescale(t *testing.T) {
	r := NewRescale("r", 1.0/255)
	ct, err := exec.NewComponentTest("static", r.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(2).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.FromSlice([]float64{0, 255}, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(tensor.FromSlice([]float64{0, 1}, 1, 2), 1e-12) {
		t.Fatalf("got %v", out)
	}
}

func TestGrayscaleLuminance(t *testing.T) {
	g := NewGrayscale("g", nil)
	ct, err := exec.NewComponentTest("define-by-run", g.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(1, 1, 3).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pure white pixel (1,1,1) must map to 1.0 under luminance weights.
	out, err := ct.Test1("call", tensor.Ones(1, 1, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape(), []int{1, 1, 1, 1}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	if d := out.Item() - 1.0; d > 1e-9 || d < -1e-9 {
		t.Fatalf("white pixel → %g", out.Item())
	}
}

func TestClampRewardClipping(t *testing.T) {
	c := NewClamp("c", -1, 1)
	ct, err := exec.NewComponentTest("static", c.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox().WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.FromSlice([]float64{-5, 0.3, 7}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.FromSlice([]float64{-1, 0.3, 1}, 3)) {
		t.Fatalf("got %v", out)
	}
}

func TestStackChainsStagesBothBackends(t *testing.T) {
	for _, b := range exec.Backends() {
		s := NewStack("pp",
			NewRescale("scale", 0.5).Component,
			NewClamp("clip", 0, 1).Component,
		)
		ct, err := exec.NewComponentTest(b, s.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(3).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", tensor.FromSlice([]float64{-2, 1, 4}, 1, 3))
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.FromSlice([]float64{0, 0.5, 1}, 1, 3)
		if !out.AllClose(want, 1e-12) {
			t.Fatalf("%s: got %v", b, out)
		}
	}
}

func TestStackIsAComponentGraph(t *testing.T) {
	s := NewStack("pp", NewRescale("a", 1).Component, NewClamp("b", 0, 1).Component)
	if s.Component.NumComponents() != 3 {
		t.Fatalf("components = %d", s.Component.NumComponents())
	}
	if s.Component.Sub("a") == nil || s.Component.Sub("b") == nil {
		t.Fatal("stages not registered as sub-components")
	}
}

// Package misc provides infrastructure components: weight synchronization,
// the shared blocking FIFO queue and the staging area used by the IMPALA
// architecture (paper §5.1, Distributed TensorFlow), and container
// split/merge helpers.
package misc

import (
	"fmt"
	"sync"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// Synchronizer copies weights from a source variable store to a destination
// store (target-network sync, learner→worker weight push). Stores are
// resolved lazily so the synchronizer can be wired before builds complete.
type Synchronizer struct {
	*component.Component
	src, dst func() *vars.Store
	// Syncs counts executed synchronizations.
	Syncs int
}

// NewSynchronizer returns a synchronizer component with a "sync" API.
func NewSynchronizer(name string, src, dst func() *vars.Store) *Synchronizer {
	s := &Synchronizer{Component: component.New(name), src: src, dst: dst}
	s.DefineAPI("sync", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return s.GraphFn(ctx, "sync", 1, s.syncFn, in...)
	})
	return s
}

func (s *Synchronizer) syncFn(ops backend.Ops, _ []backend.Ref) []backend.Ref {
	out := ops.Stateful("Sync", []int{}, func([]*tensor.Tensor) (*tensor.Tensor, error) {
		n, err := SyncStores(s.src(), s.dst())
		if err != nil {
			return nil, err
		}
		s.Syncs++
		return tensor.Scalar(float64(n)), nil
	})
	return []backend.Ref{out}
}

// SyncStores copies values between stores by positional order (source and
// destination must hold the same variable layout, e.g. online → target
// network). It returns the number of variables copied.
func SyncStores(src, dst *vars.Store) (int, error) {
	sv, dv := src.All(), dst.All()
	if len(sv) != len(dv) {
		return 0, fmt.Errorf("misc: sync store size mismatch: %d vs %d", len(sv), len(dv))
	}
	for i := range sv {
		if !tensor.SameShape(sv[i].Val.Shape(), dv[i].Val.Shape()) {
			return 0, fmt.Errorf("misc: sync shape mismatch at %q: %v vs %v",
				dv[i].Name, sv[i].Val.Shape(), dv[i].Val.Shape())
		}
		dv[i].Val = sv[i].Val.Clone()
	}
	return len(sv), nil
}

// FIFOQueue is a bounded, thread-safe blocking queue of multi-tensor records
// — the globally shared rollout queue of the IMPALA architecture. Enqueue
// blocks when full; dequeue blocks when empty. Both are exposed as API
// methods so queue interaction is part of the computation graph (graph-fused
// environment stepping, paper §5.1).
type FIFOQueue struct {
	*component.Component

	capacity  int
	numFields int

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    [][]*tensor.Tensor
	closed   bool

	rowShapes [][]int
}

// NewFIFOQueue returns a queue of numFields-tensor records.
func NewFIFOQueue(name string, capacity, numFields int) *FIFOQueue {
	q := &FIFOQueue{Component: component.New(name), capacity: capacity, numFields: numFields}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	q.SetImpl(q)
	q.SetVarCreatorFns("enqueue")
	q.DefineAPI("enqueue", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return q.GraphFn(ctx, "enqueue", 1, q.enqueueFn, in...)
	})
	q.DefineAPI("dequeue", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return q.GraphFn(ctx, "dequeue", q.numFields, q.dequeueFn, in...)
	})
	return q
}

// CreateVariables records the record layout from the enqueue spaces.
func (q *FIFOQueue) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	if len(inSpaces) != q.numFields {
		return fmt.Errorf("misc: queue %q configured for %d fields, enqueue saw %d",
			q.Name(), q.numFields, len(inSpaces))
	}
	q.rowShapes = make([][]int, q.numFields)
	for i, sp := range inSpaces {
		q.rowShapes[i] = append([]int(nil), sp.Shape()...)
	}
	return nil
}

func (q *FIFOQueue) enqueueFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	out := ops.Stateful("QEnqueue", []int{}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
		rec := make([]*tensor.Tensor, len(ts))
		copy(rec, ts)
		q.mu.Lock()
		defer q.mu.Unlock()
		for len(q.items) >= q.capacity && !q.closed {
			q.notFull.Wait()
		}
		if q.closed {
			return nil, fmt.Errorf("misc: queue %q closed", q.Name())
		}
		q.items = append(q.items, rec)
		q.notEmpty.Signal()
		return tensor.Scalar(float64(len(q.items))), nil
	}, in...)
	return []backend.Ref{out}
}

func (q *FIFOQueue) dequeueFn(ops backend.Ops, _ []backend.Ref) []backend.Ref {
	shapes := make([][]int, q.numFields)
	for i := range shapes {
		if q.rowShapes != nil {
			shapes[i] = append([]int{-1}, q.rowShapes[i]...)
		} else {
			shapes[i] = []int{-1}
		}
	}
	return ops.StatefulMulti("QDequeue", shapes, func([]*tensor.Tensor) ([]*tensor.Tensor, error) {
		q.mu.Lock()
		defer q.mu.Unlock()
		for len(q.items) == 0 && !q.closed {
			q.notEmpty.Wait()
		}
		if len(q.items) == 0 && q.closed {
			return nil, fmt.Errorf("misc: queue %q closed", q.Name())
		}
		rec := q.items[0]
		q.items = q.items[1:]
		q.notFull.Signal()
		return rec, nil
	})
}

// Len returns the current queue length.
func (q *FIFOQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close unblocks all waiters with an error.
func (q *FIFOQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// StagingArea is a one-slot pipeline buffer: put stores a record and get
// returns the previously staged one, hiding device-transfer latency behind
// compute exactly like the staging areas in the IMPALA learner.
type StagingArea struct {
	*component.Component

	numFields int
	slot      [][]*tensor.Tensor
	rowShapes [][]int
}

// NewStagingArea returns a staging component.
func NewStagingArea(name string, numFields int) *StagingArea {
	s := &StagingArea{Component: component.New(name), numFields: numFields}
	s.SetImpl(s)
	s.SetVarCreatorFns("put")
	s.DefineAPI("put", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return s.GraphFn(ctx, "put", 1, s.putFn, in...)
	})
	s.DefineAPI("get", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return s.GraphFn(ctx, "get", s.numFields, s.getFn, in...)
	})
	return s
}

// CreateVariables records the record layout from the put spaces.
func (s *StagingArea) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	s.rowShapes = make([][]int, len(inSpaces))
	for i, sp := range inSpaces {
		s.rowShapes[i] = append([]int(nil), sp.Shape()...)
	}
	return nil
}

func (s *StagingArea) putFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	out := ops.Stateful("StagePut", []int{}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
		rec := make([]*tensor.Tensor, len(ts))
		copy(rec, ts)
		s.slot = append(s.slot, rec)
		return tensor.Scalar(float64(len(s.slot))), nil
	}, in...)
	return []backend.Ref{out}
}

func (s *StagingArea) getFn(ops backend.Ops, _ []backend.Ref) []backend.Ref {
	shapes := make([][]int, s.numFields)
	for i := range shapes {
		if s.rowShapes != nil {
			shapes[i] = append([]int{-1}, s.rowShapes[i]...)
		} else {
			shapes[i] = []int{-1}
		}
	}
	return ops.StatefulMulti("StageGet", shapes, func([]*tensor.Tensor) ([]*tensor.Tensor, error) {
		if len(s.slot) == 0 {
			return nil, fmt.Errorf("misc: staging area %q empty", s.Name())
		}
		rec := s.slot[0]
		s.slot = s.slot[1:]
		return rec, nil
	})
}

// Depth returns the number of staged records.
func (s *StagingArea) Depth() int { return len(s.slot) }

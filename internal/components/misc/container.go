package misc

import (
	"fmt"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

// ContainerSplitter splits a flattened container record into its primitive
// leaves — the paper Fig. 3 splitter ("Use space-hints to auto-split/merge
// ... inputs and outputs"). A record of a Dict/Tuple space travels between
// components as one [batch, totalWidth] tensor (leaves flattened and
// concatenated in Flatten order); the splitter recovers per-leaf tensors
// with their element shapes.
type ContainerSplitter struct {
	*component.Component

	space  spaces.Space
	leaves []spaces.LeafPath
	widths []int
	total  int
}

// NewContainerSplitter builds a splitter for a container space.
func NewContainerSplitter(name string, space spaces.Space) *ContainerSplitter {
	s := &ContainerSplitter{Component: component.New(name), space: space}
	s.leaves = spaces.Flatten(space)
	for _, l := range s.leaves {
		w := tensor.NumElems(l.Space.Shape())
		s.widths = append(s.widths, w)
		s.total += w
	}
	s.DefineAPI("split", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return s.GraphFn(ctx, "split", len(s.leaves), s.splitFn, in...)
	})
	return s
}

// NumLeaves returns the number of primitive outputs.
func (s *ContainerSplitter) NumLeaves() int { return len(s.leaves) }

// LeafPaths lists the leaf paths in output order.
func (s *ContainerSplitter) LeafPaths() []string {
	out := make([]string, len(s.leaves))
	for i, l := range s.leaves {
		out[i] = l.Path
	}
	return out
}

func (s *ContainerSplitter) splitFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	shape := ops.ShapeOf(in[0])
	if got := shape[len(shape)-1]; got != s.total && got != -1 {
		panic(fmt.Sprintf("misc: splitter %q wants width %d, got %d", s.Name(), s.total, got))
	}
	out := make([]backend.Ref, len(s.leaves))
	off := 0
	for i, w := range s.widths {
		piece := ops.SliceCols(in[0], off, off+w)
		// Restore the leaf's element shape when it is not a flat vector.
		if es := s.leaves[i].Space.Shape(); len(es) > 1 {
			piece = ops.Reshape(piece, append([]int{-1}, es...)...)
		}
		out[i] = piece
		off += w
	}
	return out
}

// ContainerMerger is the inverse: it flattens and concatenates per-leaf
// records back into the single [batch, totalWidth] representation.
type ContainerMerger struct {
	*component.Component

	space  spaces.Space
	leaves []spaces.LeafPath
}

// NewContainerMerger builds a merger for a container space.
func NewContainerMerger(name string, space spaces.Space) *ContainerMerger {
	m := &ContainerMerger{Component: component.New(name), space: space}
	m.leaves = spaces.Flatten(space)
	m.DefineAPI("merge", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return m.GraphFn(ctx, "merge", 1, m.mergeFn, in...)
	})
	return m
}

func (m *ContainerMerger) mergeFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	if len(in) != len(m.leaves) {
		panic(fmt.Sprintf("misc: merger %q wants %d leaves, got %d", m.Name(), len(m.leaves), len(in)))
	}
	flat := make([]backend.Ref, len(in))
	for i, r := range in {
		flat[i] = ops.FlattenBatch(r)
	}
	return []backend.Ref{ops.Concat(-1, flat...)}
}

// FlattenContainerValue converts a spaces.Value (batched leaves) into the
// single flattened tensor representation the splitter consumes.
func FlattenContainerValue(space spaces.Space, v *spaces.Value) *tensor.Tensor {
	leaves := spaces.FlattenValue(space, v)
	flat := make([]*tensor.Tensor, len(leaves))
	for i, t := range leaves {
		flat[i] = t.Reshape(t.Dim(0), -1)
	}
	return tensor.Concat(1, flat...)
}

package misc

import (
	"sync"
	"testing"
	"time"

	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

func storeWith(names []string, vals []float64) *vars.Store {
	s := vars.NewStore()
	for i, n := range names {
		s.Add(vars.New(n, tensor.Scalar(vals[i])))
	}
	return s
}

func TestSyncStoresCopiesValues(t *testing.T) {
	src := storeWith([]string{"a", "b"}, []float64{1, 2})
	dst := storeWith([]string{"a2", "b2"}, []float64{0, 0})
	n, err := SyncStores(src, dst)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if dst.Get("a2").Val.Item() != 1 || dst.Get("b2").Val.Item() != 2 {
		t.Fatal("values not copied")
	}
	// Deep copy: mutating source must not affect destination.
	src.Get("a").Val.Data()[0] = 99
	if dst.Get("a2").Val.Item() != 1 {
		t.Fatal("sync aliased storage")
	}
}

func TestSyncStoresSizeMismatch(t *testing.T) {
	src := storeWith([]string{"a"}, []float64{1})
	dst := storeWith([]string{"x", "y"}, []float64{0, 0})
	if _, err := SyncStores(src, dst); err == nil {
		t.Fatal("expected error")
	}
}

func TestSynchronizerComponent(t *testing.T) {
	src := storeWith([]string{"a"}, []float64{5})
	dst := storeWith([]string{"b"}, []float64{0})
	s := NewSynchronizer("sync", func() *vars.Store { return src }, func() *vars.Store { return dst })
	ct, err := exec.NewComponentTest("static", s.Component, exec.InputSpaces{"sync": {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("sync"); err != nil {
		t.Fatal(err)
	}
	if dst.Get("b").Val.Item() != 5 {
		t.Fatal("synchronizer did not copy")
	}
	if s.Syncs != 1 {
		t.Fatalf("syncs = %d", s.Syncs)
	}
}

func queueSpaces() exec.InputSpaces {
	return exec.InputSpaces{
		"enqueue": {spaces.NewFloatBox(2).WithBatchRank(), spaces.NewFloatBox().WithBatchRank()},
		"dequeue": {},
	}
}

func TestFIFOQueueOrdering(t *testing.T) {
	for _, b := range exec.Backends() {
		q := NewFIFOQueue("q", 4, 2)
		ct, err := exec.NewComponentTest(b, q.Component, queueSpaces())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			x := tensor.Full(float64(i), 1, 2)
			r := tensor.Full(float64(i), 1)
			if _, err := ct.Test("enqueue", x, r); err != nil {
				t.Fatal(err)
			}
		}
		if q.Len() != 3 {
			t.Fatalf("len = %d", q.Len())
		}
		for i := 0; i < 3; i++ {
			outs, err := ct.Test("dequeue")
			if err != nil {
				t.Fatal(err)
			}
			if outs[0].Data()[0] != float64(i) {
				t.Fatalf("%s: dequeue %d got %g", b, i, outs[0].Data()[0])
			}
		}
	}
}

func TestFIFOQueueBlocksAndUnblocks(t *testing.T) {
	q := NewFIFOQueue("q", 1, 1)
	ct, err := exec.NewComponentTest("define-by-run", q.Component, exec.InputSpaces{
		"enqueue": {spaces.NewFloatBox().WithBatchRank()},
		"dequeue": {},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 1)
	go func() {
		outs, err := ct.Test("dequeue")
		if err != nil {
			done <- -1
			return
		}
		done <- outs[0].Data()[0]
	}()
	// Dequeue must block until a producer enqueues.
	select {
	case <-done:
		t.Fatal("dequeue returned on empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := ct.Test("enqueue", tensor.Full(7, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("dequeued %g", v)
		}
	case <-time.After(time.Second):
		t.Fatal("dequeue never unblocked")
	}
}

func TestFIFOQueueCloseUnblocksWaiters(t *testing.T) {
	q := NewFIFOQueue("q", 1, 1)
	ct, err := exec.NewComponentTest("define-by-run", q.Component, exec.InputSpaces{
		"enqueue": {spaces.NewFloatBox().WithBatchRank()},
		"dequeue": {},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := ct.Test("dequeue")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()
	if err := <-errCh; err == nil {
		t.Fatal("closed dequeue should error")
	}
}

func TestStagingAreaPipelines(t *testing.T) {
	s := NewStagingArea("stage", 1)
	ct, err := exec.NewComponentTest("define-by-run", s.Component, exec.InputSpaces{
		"put": {spaces.NewFloatBox().WithBatchRank()},
		"get": {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("put", tensor.Full(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("put", tensor.Full(2, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test("get")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data()[0] != 1 {
		t.Fatalf("staged order wrong: got %g", out[0].Data()[0])
	}
	if s.Depth() != 1 {
		t.Fatalf("depth = %d", s.Depth())
	}
}

func TestStagingAreaEmptyGetErrors(t *testing.T) {
	s := NewStagingArea("stage", 1)
	ct, err := exec.NewComponentTest("define-by-run", s.Component, exec.InputSpaces{
		"put": {spaces.NewFloatBox().WithBatchRank()},
		"get": {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("get"); err == nil {
		t.Fatal("expected error on empty staging area")
	}
}

package misc

import (
	"math/rand"
	"testing"

	"rlgraph/internal/component"
	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func containerSpace() spaces.Space {
	return spaces.NewDict(map[string]spaces.Space{
		"position": spaces.NewFloatBox(3).WithBatchRank(),
		"camera":   spaces.NewFloatBox(2, 2).WithBatchRank(),
		"health":   spaces.NewFloatBox(1).WithBatchRank(),
	})
}

func TestSplitterRecoversLeaves(t *testing.T) {
	space := containerSpace()
	for _, b := range exec.Backends() {
		s := NewContainerSplitter("split", space)
		if s.NumLeaves() != 3 {
			t.Fatalf("leaves = %d", s.NumLeaves())
		}
		// Leaf order is the deterministic Flatten order (sorted keys).
		want := []string{"camera", "health", "position"}
		for i, p := range s.LeafPaths() {
			if p != want[i] {
				t.Fatalf("leaf %d = %q", i, p)
			}
		}
		total := 4 + 1 + 3
		ct, err := exec.NewComponentTest(b, s.Component, exec.InputSpaces{
			"split": {spaces.NewFloatBox(total).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		v := spaces.SampleContainer(space, rng, 5)
		flat := FlattenContainerValue(space, v)
		outs, err := ct.Test("split", flat)
		if err != nil {
			t.Fatal(err)
		}
		// camera leaf restored to [5,2,2].
		if !tensor.SameShape(outs[0].Shape(), []int{5, 2, 2}) {
			t.Fatalf("%s: camera shape = %v", b, outs[0].Shape())
		}
		if !outs[0].Equal(v.Get("camera").Leaf) {
			t.Fatalf("%s: camera data mismatch", b)
		}
		if !outs[1].Equal(v.Get("health").Leaf) || !outs[2].Equal(v.Get("position").Leaf) {
			t.Fatalf("%s: leaf data mismatch", b)
		}
	}
}

func TestMergerInvertsSplitter(t *testing.T) {
	space := containerSpace()
	root := component.New("root")
	s := NewContainerSplitter("split", space)
	m := NewContainerMerger("merge", space)
	root.AddSub(s.Component)
	root.AddSub(m.Component)
	root.DefineAPI("roundtrip", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		leaves := s.Call(ctx, "split", in...)
		return m.Call(ctx, "merge", leaves...)
	})
	total := 8
	ct, err := exec.NewComponentTest("static", root, exec.InputSpaces{
		"roundtrip": {spaces.NewFloatBox(total).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in := tensor.RandNormal(rng, 0, 1, 4, total)
	out, err := ct.Test1("roundtrip", in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Fatal("merge(split(x)) != x")
	}
}

func TestSplitterGradientFlows(t *testing.T) {
	// The split must be differentiable: gradients flow back into the
	// flattened record through SliceCols' adjoint.
	space := spaces.NewDict(map[string]spaces.Space{
		"a": spaces.NewFloatBox(2).WithBatchRank(),
		"b": spaces.NewFloatBox(3).WithBatchRank(),
	})
	_ = space
	// Verified at the op level in graph/eager tests (SliceCols gradient);
	// here we check the component path executes on a grad-enabled API.
	s := NewContainerSplitter("split", space)
	ct, err := exec.NewComponentTest("define-by-run", s.Component, exec.InputSpaces{
		"split": {spaces.NewFloatBox(5).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ct.Test("split", tensor.Arange(0, 10).Reshape(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Equal(tensor.FromSlice([]float64{0, 1, 5, 6}, 2, 2)) {
		t.Fatalf("a = %v", outs[0])
	}
	if !outs[1].Equal(tensor.FromSlice([]float64{2, 3, 4, 7, 8, 9}, 2, 3)) {
		t.Fatalf("b = %v", outs[1])
	}
}

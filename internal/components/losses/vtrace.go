package losses

import (
	"math"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/tensor"
)

// VTraceConfig parameterizes the IMPALA loss (Espeholt et al. 2018).
type VTraceConfig struct {
	// Gamma is the discount.
	Gamma float64 `json:"gamma"`
	// RhoClip and CClip bound the importance ratios (ρ̄ and c̄; 1.0 each in
	// the paper).
	RhoClip float64 `json:"rho_clip,omitempty"`
	CClip   float64 `json:"c_clip,omitempty"`
	// ValueCoeff and EntropyCoeff weight the baseline and entropy terms.
	ValueCoeff   float64 `json:"value_coeff,omitempty"`
	EntropyCoeff float64 `json:"entropy_coeff,omitempty"`
	// RolloutLen T is the time length of each rollout; inputs are time-major
	// [T*B] flattened.
	RolloutLen int `json:"rollout_len"`
}

// VTraceLoss computes the IMPALA actor-critic loss with V-trace off-policy
// corrections. The v-trace targets are computed by a host-side backward scan
// (they are constants wrt the parameters, exactly as in the reference
// implementation, which stops gradients through vs); policy gradients flow
// through the log-probabilities and baseline gradients through the values.
//
// API method:
//
//	loss(logits [T*B,A], values [T*B], actions [T*B], rewards [T*B],
//	     discounts [T*B], behaviorLogp [T*B], bootstrap [B])
//	  -> loss (scalar), pgLoss, valueLoss, entropy (scalars)
type VTraceLoss struct {
	*component.Component
	cfg VTraceConfig
}

// NewVTraceLoss returns the loss component.
func NewVTraceLoss(name string, cfg VTraceConfig) *VTraceLoss {
	if cfg.RhoClip == 0 {
		cfg.RhoClip = 1
	}
	if cfg.CClip == 0 {
		cfg.CClip = 1
	}
	if cfg.ValueCoeff == 0 {
		cfg.ValueCoeff = 0.5
	}
	l := &VTraceLoss{Component: component.New(name), cfg: cfg}
	l.DefineAPI("loss", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return l.GraphFn(ctx, "vtrace_loss", 4, l.lossFn, in...)
	})
	return l
}

func (l *VTraceLoss) lossFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	logits, values, actions := in[0], in[1], in[2]
	rewards, discounts, behaviorLogp, bootstrap := in[3], in[4], in[5], in[6]

	logp := ops.LogSoftmax(logits)
	actionLogp := ops.TakeAlongLastAxis(logp, actions)

	// V-trace targets: host-side backward scan over detached inputs.
	vsAndAdv := ops.StatefulMulti("VTrace", [][]int{{-1}, {-1}},
		func(ts []*tensor.Tensor) ([]*tensor.Tensor, error) {
			return l.vtraceScan(ts[0], ts[1], ts[2], ts[3], ts[4], ts[5])
		},
		ops.StopGradient(actionLogp), behaviorLogp, ops.StopGradient(values),
		rewards, discounts, bootstrap)
	vs, pgAdv := vsAndAdv[0], vsAndAdv[1]

	// Policy gradient: -Σ ρ·logπ(a|s)·adv (adv constant).
	pgLoss := ops.Neg(ops.Sum(ops.Mul(actionLogp, pgAdv)))
	// Baseline: ½Σ (vs - V)².
	valueLoss := ops.Scale(ops.Sum(ops.Square(ops.Sub(vs, values))), 0.5)
	// Entropy bonus: -Σ Σ_a π logπ.
	probs := ops.Softmax(logits)
	entropy := ops.Neg(ops.Sum(ops.Mul(probs, logp)))

	loss := ops.Add(pgLoss,
		ops.Sub(ops.Scale(valueLoss, l.cfg.ValueCoeff),
			ops.Scale(entropy, l.cfg.EntropyCoeff)))
	return []backend.Ref{loss, pgLoss, valueLoss, entropy}
}

// vtraceScan computes vs and clipped-ρ policy-gradient advantages by the
// standard backward recursion. Inputs are time-major [T*B] flat tensors.
func (l *VTraceLoss) vtraceScan(targetLogp, behaviorLogp, values, rewards, discounts, bootstrap *tensor.Tensor) ([]*tensor.Tensor, error) {
	T := l.cfg.RolloutLen
	n := targetLogp.Size()
	B := n / T

	rho := make([]float64, n)
	cs := make([]float64, n)
	for i := 0; i < n; i++ {
		r := math.Exp(targetLogp.Data()[i] - behaviorLogp.Data()[i])
		rho[i] = math.Min(r, l.cfg.RhoClip)
		cs[i] = math.Min(r, l.cfg.CClip)
	}

	vs := make([]float64, n)
	// Backward recursion: vs_t = V_t + δ_t + γ_t c_t (vs_{t+1} - V_{t+1}).
	acc := make([]float64, B) // vs_{t+1} - V_{t+1}
	for t := T - 1; t >= 0; t-- {
		for b := 0; b < B; b++ {
			i := t*B + b
			var nextV float64
			if t == T-1 {
				nextV = bootstrap.Data()[b]
			} else {
				nextV = values.Data()[(t+1)*B+b]
			}
			delta := rho[i] * (rewards.Data()[i] + discounts.Data()[i]*nextV - values.Data()[i])
			vs[i] = values.Data()[i] + delta + discounts.Data()[i]*cs[i]*acc[b]
			acc[b] = vs[i] - values.Data()[i]
		}
	}

	adv := make([]float64, n)
	for t := 0; t < T; t++ {
		for b := 0; b < B; b++ {
			i := t*B + b
			var nextVS float64
			if t == T-1 {
				nextVS = bootstrap.Data()[b]
			} else {
				nextVS = vs[(t+1)*B+b]
			}
			adv[i] = rho[i] * (rewards.Data()[i] + discounts.Data()[i]*nextVS - values.Data()[i])
		}
	}
	return []*tensor.Tensor{tensor.FromSlice(vs, n), tensor.FromSlice(adv, n)}, nil
}

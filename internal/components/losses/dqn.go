// Package losses provides loss-function components: the (double/dueling,
// n-step, importance-weighted) DQN loss used by the DQN and Ape-X agents,
// and the V-trace actor-critic loss used by IMPALA.
package losses

import (
	"rlgraph/internal/backend"
	"rlgraph/internal/component"
)

// DQNLossConfig parameterizes the Q-learning loss.
type DQNLossConfig struct {
	// Gamma is the per-step discount.
	Gamma float64 `json:"gamma"`
	// NStep applies gamma^n for n-step returns (reward inputs must already
	// be n-step sums; 1 for plain one-step targets).
	NStep int `json:"n_step,omitempty"`
	// DoubleQ selects actions with the online network and evaluates them
	// with the target network (van Hasselt et al.).
	DoubleQ bool `json:"double_q,omitempty"`
	// Huber applies the Huber (quadratic/linear) element loss at delta=1.
	Huber bool `json:"huber,omitempty"`
}

// DQNLoss computes the TD loss.
//
// API method:
//
//	loss(q, actions, rewards, terminals, qNextTarget, qNextOnline, weights)
//	  -> loss (scalar), tdError [b]
//
// weights are importance-sampling weights (ones for uniform replay); the
// absolute TD errors feed priority updates.
type DQNLoss struct {
	*component.Component
	cfg DQNLossConfig
}

// NewDQNLoss returns the loss component.
func NewDQNLoss(name string, cfg DQNLossConfig) *DQNLoss {
	if cfg.NStep == 0 {
		cfg.NStep = 1
	}
	l := &DQNLoss{Component: component.New(name), cfg: cfg}
	l.DefineAPI("loss", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return l.GraphFn(ctx, "td_loss", 2, l.lossFn, in...)
	})
	return l
}

func (l *DQNLoss) lossFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	q, actions, rewards, terminals := in[0], in[1], in[2], in[3]
	qNextTarget, qNextOnline, weights := in[4], in[5], in[6]

	// Q(s,a) for the taken actions.
	qSelected := ops.TakeAlongLastAxis(q, actions)

	// Bootstrap value from the target network.
	var nextVal backend.Ref
	if l.cfg.DoubleQ {
		bestNext := ops.ArgMaxAxis(qNextOnline, -1)
		nextVal = ops.TakeAlongLastAxis(qNextTarget, bestNext)
	} else {
		nextVal = ops.MaxAxis(qNextTarget, -1, false)
	}
	// Mask terminals and stop gradients into the target.
	notDone := ops.OneMinus(terminals)
	gammaN := pow(l.cfg.Gamma, l.cfg.NStep)
	target := ops.Add(rewards, ops.Scale(ops.Mul(notDone, ops.StopGradient(nextVal)), gammaN))

	td := ops.Sub(qSelected, target)

	var perItem backend.Ref
	if l.cfg.Huber {
		absTD := ops.Abs(td)
		small := ops.LessEqual(absTD, ops.ConstScalar(1))
		quad := ops.Scale(ops.Square(td), 0.5)
		lin := ops.AddScalar(absTD, -0.5)
		perItem = ops.Where(small, quad, lin)
	} else {
		perItem = ops.Scale(ops.Square(td), 0.5)
	}
	loss := ops.Mean(ops.Mul(perItem, weights))
	return []backend.Ref{loss, ops.Abs(td)}
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

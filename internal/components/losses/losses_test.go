package losses

import (
	"math"
	"testing"

	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func dqnSpaces(actions int) exec.InputSpaces {
	return exec.InputSpaces{
		"loss": {
			spaces.NewFloatBox(actions).WithBatchRank(), // q
			spaces.NewIntBox(actions).WithBatchRank(),   // actions
			spaces.NewFloatBox().WithBatchRank(),        // rewards
			spaces.NewBoolBox().WithBatchRank(),         // terminals
			spaces.NewFloatBox(actions).WithBatchRank(), // q next target
			spaces.NewFloatBox(actions).WithBatchRank(), // q next online
			spaces.NewFloatBox().WithBatchRank(),        // weights
		},
	}
}

func TestDQNLossHandComputed(t *testing.T) {
	for _, b := range exec.Backends() {
		l := NewDQNLoss("loss", DQNLossConfig{Gamma: 0.9})
		ct, err := exec.NewComponentTest(b, l.Component, dqnSpaces(2))
		if err != nil {
			t.Fatal(err)
		}
		// One transition: q(s)=[1,2], a=0, r=1, not terminal,
		// qNextTarget=[3,4] → target = 1 + 0.9*4 = 4.6; td = 1-4.6 = -3.6.
		outs, err := ct.Test("loss",
			tensor.FromSlice([]float64{1, 2}, 1, 2),
			tensor.FromSlice([]float64{0}, 1),
			tensor.FromSlice([]float64{1}, 1),
			tensor.FromSlice([]float64{0}, 1),
			tensor.FromSlice([]float64{3, 4}, 1, 2),
			tensor.FromSlice([]float64{0, 0}, 1, 2),
			tensor.FromSlice([]float64{1}, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		wantLoss := 0.5 * 3.6 * 3.6
		if math.Abs(outs[0].Item()-wantLoss) > 1e-9 {
			t.Fatalf("%s: loss = %g, want %g", b, outs[0].Item(), wantLoss)
		}
		if math.Abs(outs[1].Data()[0]-3.6) > 1e-9 {
			t.Fatalf("%s: |td| = %g", b, outs[1].Data()[0])
		}
	}
}

func TestDQNLossTerminalMasksBootstrap(t *testing.T) {
	l := NewDQNLoss("loss", DQNLossConfig{Gamma: 0.99})
	ct, err := exec.NewComponentTest("static", l.Component, dqnSpaces(2))
	if err != nil {
		t.Fatal(err)
	}
	// Terminal transition: target = r only.
	outs, err := ct.Test("loss",
		tensor.FromSlice([]float64{5, 0}, 1, 2),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{2}, 1),
		tensor.FromSlice([]float64{1}, 1), // terminal
		tensor.FromSlice([]float64{100, 100}, 1, 2),
		tensor.FromSlice([]float64{0, 0}, 1, 2),
		tensor.FromSlice([]float64{1}, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	// td = q - r = 5 - 2 = 3.
	if math.Abs(outs[1].Data()[0]-3) > 1e-9 {
		t.Fatalf("|td| = %g, want 3", outs[1].Data()[0])
	}
}

func TestDoubleDQNUsesOnlineSelection(t *testing.T) {
	l := NewDQNLoss("loss", DQNLossConfig{Gamma: 1, DoubleQ: true})
	ct, err := exec.NewComponentTest("static", l.Component, dqnSpaces(2))
	if err != nil {
		t.Fatal(err)
	}
	// Online net prefers action 0; target net values: [10, 99].
	// Double-Q target = r + qTarget[argmax qOnline] = 0 + 10.
	outs, err := ct.Test("loss",
		tensor.FromSlice([]float64{0, 0}, 1, 2),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{10, 99}, 1, 2),
		tensor.FromSlice([]float64{7, 3}, 1, 2), // online: argmax = 0
		tensor.FromSlice([]float64{1}, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outs[1].Data()[0]-10) > 1e-9 {
		t.Fatalf("|td| = %g, want 10 (double-Q)", outs[1].Data()[0])
	}
}

func TestHuberLossLinearRegion(t *testing.T) {
	l := NewDQNLoss("loss", DQNLossConfig{Gamma: 1, Huber: true})
	ct, err := exec.NewComponentTest("static", l.Component, dqnSpaces(2))
	if err != nil {
		t.Fatal(err)
	}
	// td = 4 → huber = |4| - 0.5 = 3.5 (not 8).
	outs, err := ct.Test("loss",
		tensor.FromSlice([]float64{4, 0}, 1, 2),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{1}, 1),
		tensor.FromSlice([]float64{0, 0}, 1, 2),
		tensor.FromSlice([]float64{0, 0}, 1, 2),
		tensor.FromSlice([]float64{1}, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outs[0].Item()-3.5) > 1e-9 {
		t.Fatalf("huber loss = %g, want 3.5", outs[0].Item())
	}
}

func TestImportanceWeightsScaleLoss(t *testing.T) {
	l := NewDQNLoss("loss", DQNLossConfig{Gamma: 1})
	ct, err := exec.NewComponentTest("static", l.Component, dqnSpaces(2))
	if err != nil {
		t.Fatal(err)
	}
	run := func(w float64) float64 {
		outs, err := ct.Test("loss",
			tensor.FromSlice([]float64{2, 0}, 1, 2),
			tensor.FromSlice([]float64{0}, 1),
			tensor.FromSlice([]float64{0}, 1),
			tensor.FromSlice([]float64{1}, 1),
			tensor.FromSlice([]float64{0, 0}, 1, 2),
			tensor.FromSlice([]float64{0, 0}, 1, 2),
			tensor.FromSlice([]float64{w}, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		return outs[0].Item()
	}
	if math.Abs(run(2)-2*run(1)) > 1e-9 {
		t.Fatal("weights do not scale loss linearly")
	}
}

func vtraceSpaces(actions int) exec.InputSpaces {
	return exec.InputSpaces{
		"loss": {
			spaces.NewFloatBox(actions).WithBatchRank(), // logits
			spaces.NewFloatBox().WithBatchRank(),        // values
			spaces.NewIntBox(actions).WithBatchRank(),   // actions
			spaces.NewFloatBox().WithBatchRank(),        // rewards
			spaces.NewFloatBox().WithBatchRank(),        // discounts
			spaces.NewFloatBox().WithBatchRank(),        // behavior logp
			spaces.NewFloatBox().WithBatchRank(),        // bootstrap
		},
	}
}

func TestVTraceOnPolicyReducesToTDLambdaLikeTargets(t *testing.T) {
	// On-policy (ρ=c=1, so behaviorLogp == targetLogp): for T=2, B=1,
	// vs_t follows the standard multi-step bootstrap recursion.
	cfg := VTraceConfig{Gamma: 1, RolloutLen: 2, ValueCoeff: 1, EntropyCoeff: 0}
	l := NewVTraceLoss("vtrace", cfg)
	// Uniform logits over 2 actions → logp = ln(1/2) everywhere.
	logp := math.Log(0.5)
	res, err := l.vtraceScan(
		tensor.FromSlice([]float64{logp, logp}, 2),
		tensor.FromSlice([]float64{logp, logp}, 2),
		tensor.FromSlice([]float64{1, 2}, 2), // V
		tensor.FromSlice([]float64{1, 1}, 2), // rewards
		tensor.FromSlice([]float64{1, 1}, 2), // discounts
		tensor.FromSlice([]float64{3}, 1),    // bootstrap
	)
	if err != nil {
		t.Fatal(err)
	}
	vs := res[0]
	// t=1: δ = 1 + 3 - 2 = 2 → vs_1 = 4. t=0: δ = 1 + 2 - 1 = 2,
	// vs_0 = 1 + 2 + (vs_1 - V_1) = 5.
	if math.Abs(vs.Data()[1]-4) > 1e-9 || math.Abs(vs.Data()[0]-5) > 1e-9 {
		t.Fatalf("vs = %v", vs.Data())
	}
}

func TestVTraceLossRunsOnBothBackends(t *testing.T) {
	for _, b := range exec.Backends() {
		cfg := VTraceConfig{Gamma: 0.99, RolloutLen: 3, EntropyCoeff: 0.01}
		l := NewVTraceLoss("vtrace", cfg)
		ct, err := exec.NewComponentTest(b, l.Component, vtraceSpaces(4))
		if err != nil {
			t.Fatal(err)
		}
		n := 6 // T=3, B=2
		outs, err := ct.Test("loss",
			tensor.New(n, 4),
			tensor.New(n),
			tensor.FromSlice([]float64{0, 1, 2, 3, 0, 1}, n),
			tensor.Ones(n),
			tensor.Full(0.99, n),
			tensor.Full(math.Log(0.25), n),
			tensor.New(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 4 {
			t.Fatalf("%s: outputs = %d", b, len(outs))
		}
		for i, o := range outs {
			if math.IsNaN(o.Item()) {
				t.Fatalf("%s: output %d is NaN", b, i)
			}
		}
		// Entropy of uniform logits over 4 actions per step: n*ln(4).
		wantEnt := float64(n) * math.Log(4)
		if math.Abs(outs[3].Item()-wantEnt) > 1e-9 {
			t.Fatalf("%s: entropy = %g, want %g", b, outs[3].Item(), wantEnt)
		}
	}
}

func TestVTraceClippingBoundsRho(t *testing.T) {
	cfg := VTraceConfig{Gamma: 1, RolloutLen: 1, RhoClip: 1, CClip: 1}
	l := NewVTraceLoss("v", cfg)
	// Target logp much larger than behavior: raw ρ = e³ ≈ 20, clipped to 1.
	out, err := l.vtraceScan(
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{-3}, 1),
		tensor.FromSlice([]float64{0}, 1),
		tensor.FromSlice([]float64{1}, 1),
		tensor.FromSlice([]float64{1}, 1),
		tensor.FromSlice([]float64{0}, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	vs := out[0]
	// With ρ clipped to 1: δ = 1*(1 + 0 - 0) = 1 → vs = 1; unclipped would
	// give ~20.
	if math.Abs(vs.Data()[0]-1) > 1e-9 {
		t.Fatalf("vs = %g, want 1 (clipped)", vs.Data()[0])
	}
}

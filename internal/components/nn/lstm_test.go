package nn

import (
	"math"
	"testing"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/components/optimizers"
	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

func TestLSTMShapesBothBackends(t *testing.T) {
	for _, b := range exec.Backends() {
		l := NewLSTM("lstm", 6, 1)
		ct, err := exec.NewComponentTest(b, l.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(5, 3).WithBatchRank()}, // [b, T=5, F=3]
			"step": {
				spaces.NewFloatBox(3).WithBatchRank(),
				spaces.NewFloatBox(6).WithBatchRank(),
				spaces.NewFloatBox(6).WithBatchRank(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", tensor.New(2, 5, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.SameShape(out.Shape(), []int{2, 6}) {
			t.Fatalf("%s: call out = %v", b, out.Shape())
		}
		outs, err := ct.Test("step", tensor.Ones(2, 3), tensor.New(2, 6), tensor.New(2, 6))
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 3 || !tensor.SameShape(outs[1].Shape(), []int{2, 6}) {
			t.Fatalf("%s: step outs = %d", b, len(outs))
		}
	}
}

func TestLSTMBackendsAgree(t *testing.T) {
	x := tensor.Arange(0, 24).Reshape(2, 4, 3)
	var results []*tensor.Tensor
	for _, b := range exec.Backends() {
		l := NewLSTM("lstm", 4, 7)
		ct, err := exec.NewComponentTest(b, l.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(4, 3).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", x)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, out)
	}
	if !results[0].AllClose(results[1], 1e-12) {
		t.Fatal("LSTM backends disagree")
	}
}

func TestLSTMStepMatchesUnroll(t *testing.T) {
	// Manually stepping T times from zero state must equal call() on the
	// same sequence.
	T, F, U := 3, 2, 4
	l := NewLSTM("lstm", U, 3)
	ct, err := exec.NewComponentTest("define-by-run", l.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(T, F).WithBatchRank()},
		"step": {
			spaces.NewFloatBox(F).WithBatchRank(),
			spaces.NewFloatBox(U).WithBatchRank(),
			spaces.NewFloatBox(U).WithBatchRank(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := tensor.Arange(0, T*F).Reshape(1, T, F)
	want, err := ct.Test1("call", seq)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.New(1, U)
	c := tensor.New(1, U)
	for step := 0; step < T; step++ {
		xt := tensor.SliceCols(seq.Reshape(1, T*F), step*F, (step+1)*F)
		outs, err := ct.Test("step", xt, h, c)
		if err != nil {
			t.Fatal(err)
		}
		h, c = outs[1], outs[2]
	}
	if !h.AllClose(want, 1e-12) {
		t.Fatalf("step chain %v != unroll %v", h, want)
	}
}

// lstmRegressor wires LSTM + readout + optimizer to learn a memory task:
// predict the FIRST element of the sequence from the LAST hidden state —
// only solvable when gradients flow through all unrolled steps (BPTT).
type lstmRegressor struct {
	*component.Component
	lstm *LSTM
	head *Dense
	opt  *optimizers.Optimizer
}

func newLSTMRegressor() *lstmRegressor {
	r := &lstmRegressor{Component: component.New("reg")}
	r.lstm = NewLSTM("lstm", 8, 5)
	r.head = NewDense("head", 1, "", 6)
	r.AddSub(r.lstm.Component)
	r.AddSub(r.head.Component)
	r.opt = optimizers.Must("opt", optimizers.Config{Type: "adam", LearningRate: 0.02},
		func() []*vars.Variable {
			all := vars.NewStore()
			for _, v := range r.lstm.AllVariables().All() {
				all.Add(v)
			}
			for _, v := range r.head.AllVariables().All() {
				all.Add(v)
			}
			return all.Trainable()
		})
	r.AddSub(r.opt.Component)
	r.DefineAPI("train", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		hidden := r.lstm.Call(ctx, "call", in[0])
		pred := r.head.Call(ctx, "call", hidden...)
		loss := r.GraphFn(ctx, "mse", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			diff := ops.Sub(ops.Reshape(refs[0], -1), refs[1])
			return []backend.Ref{ops.Mean(ops.Square(diff))}
		}, pred[0], in[1])
		norm := r.opt.Call(ctx, "step", loss[0])
		// The optimizer's output must be part of the API result so the
		// static executor fetches (and thereby applies) the updates.
		return []*component.Rec{loss[0], norm[0]}
	})
	return r
}

func TestLSTMLearnsToRememberFirstInput(t *testing.T) {
	r := newLSTMRegressor()
	T := 5
	ct, err := exec.NewComponentTest("static", r.Component, exec.InputSpaces{
		"train": {
			spaces.NewFloatBox(T, 1).WithBatchRank(),
			spaces.NewFloatBox().WithBatchRank(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic dataset: first element ±1, rest noise-ish values.
	n := 16
	x := tensor.New(n, T, 1)
	y := tensor.New(n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i%2 == 0 {
			v = -1
		}
		x.Set(v, i, 0, 0)
		for s := 1; s < T; s++ {
			x.Set(0.1*float64((i+s)%3), i, s, 0)
		}
		y.Data()[i] = v
	}
	var first, last float64
	for it := 0; it < 150; it++ {
		outs, err := ct.Test("train", x, y)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = outs[0].Item()
		}
		last = outs[0].Item()
	}
	if math.IsNaN(last) || last > first*0.1 {
		t.Fatalf("BPTT did not learn: loss %g → %g", first, last)
	}
}

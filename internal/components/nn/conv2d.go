package nn

import (
	"fmt"
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// Conv2DLayer is an NHWC convolution layer with bias and activation. Its
// forward op lowers to tensor.Conv2D on both backends, so agent networks
// built from this layer exercise the arena-backed tiled conv pipeline (see
// internal/tensor/conv.go) rather than a layer-local fallback.
type Conv2DLayer struct {
	*component.Component

	filters    int
	kernelH    int
	kernelW    int
	params     tensor.ConvParams
	activation string
	seed       int64

	W, B *vars.Variable
}

// NewConv2D returns a conv layer. padding is "valid" or "same".
func NewConv2D(name string, filters, kernel, stride int, padding, activation string, seed int64) *Conv2DLayer {
	p := tensor.ConvParams{StrideH: stride, StrideW: stride}
	if padding == "same" {
		p.PadH, p.PadW = tensor.SamePadding(kernel, kernel)
	}
	c := &Conv2DLayer{
		Component: component.New(name), filters: filters,
		kernelH: kernel, kernelW: kernel, params: p,
		activation: activation, seed: seed,
	}
	c.SetImpl(c)
	c.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return c.GraphFn(ctx, "forward", 1, c.forward, in...)
	})
	return c
}

func (c *Conv2DLayer) forward(ops backend.Ops, in []backend.Ref) []backend.Ref {
	y := ops.Add(ops.Conv2D(in[0], ops.VarRead(c.W), c.params), ops.VarRead(c.B))
	return []backend.Ref{applyActivation(ops, y, c.activation)}
}

// CreateVariables builds the filter [kh,kw,C,OC] and bias [OC] from the
// input space's channel count.
func (c *Conv2DLayer) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	shape := inSpaces[0].Shape()
	if len(shape) != 3 {
		return fmt.Errorf("nn: Conv2D %q wants HWC input, got element shape %v", c.Name(), shape)
	}
	inC := shape[2]
	fanIn := c.kernelH * c.kernelW * inC
	fanOut := c.kernelH * c.kernelW * c.filters
	rng := rand.New(rand.NewSource(c.seed))
	c.W = c.AddVariable(vars.New("W",
		tensor.GlorotUniform(rng, fanIn, fanOut, c.kernelH, c.kernelW, inC, c.filters)))
	c.B = c.AddVariable(vars.New("b", tensor.New(c.filters)))
	return nil
}

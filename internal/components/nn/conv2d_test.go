package nn

import (
	"math/rand"
	"testing"

	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

// Both backends lower the layer through tensor.Conv2D with identically
// seeded weights, so forward outputs must match bit-for-bit, not just to
// tolerance.
func TestConv2DForwardBothBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := tensor.RandNormal(rng, 0, 1, 2, 9, 9, 3)
	var outs []*tensor.Tensor
	for _, b := range exec.Backends() {
		c := NewConv2D("c", 5, 3, 2, "same", "relu", 77)
		ct, err := exec.NewComponentTest(b, c.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(9, 9, 3).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.SameShape(out.Shape(), []int{2, 5, 5, 5}) {
			t.Fatalf("backend %s: shape = %v", b, out.Shape())
		}
		for _, v := range out.Data() {
			if v < 0 {
				t.Fatalf("backend %s: relu output negative", b)
			}
		}
		outs = append(outs, out)
	}
	a, b := outs[0].Data(), outs[1].Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backends disagree at flat index %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConv2DCreatesVariablesFromInputSpace(t *testing.T) {
	c := NewConv2D("c", 6, 3, 1, "valid", "", 9)
	if _, err := exec.NewComponentTest("static", c.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(8, 8, 2).WithBatchRank()},
	}); err != nil {
		t.Fatal(err)
	}
	if c.W == nil || !tensor.SameShape(c.W.Val.Shape(), []int{3, 3, 2, 6}) {
		t.Fatalf("W shape = %v", c.W.Val.Shape())
	}
	if !tensor.SameShape(c.B.Val.Shape(), []int{6}) {
		t.Fatalf("B shape = %v", c.B.Val.Shape())
	}
}

// A small conv net (conv → conv → flatten → dense) run end-to-end on both
// backends exercises the tiled conv fast path through the full component
// stack and must agree across backends.
func TestConvNetworkBothBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := tensor.RandNormal(rng, 0, 1, 3, 12, 12, 2)
	var outs []*tensor.Tensor
	for _, b := range exec.Backends() {
		n := MustNetwork("convnet", []LayerSpec{
			{Type: "conv2d", Filters: 4, Kernel: 3, Stride: 2, Padding: "same", Activation: "relu"},
			{Type: "conv2d", Filters: 8, Kernel: 3, Stride: 1, Activation: "relu"},
			{Type: "flatten"},
			{Type: "dense", Units: 6},
		}, 19)
		ct, err := exec.NewComponentTest(b, n.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(12, 12, 2).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.SameShape(out.Shape(), []int{3, 6}) {
			t.Fatalf("backend %s: shape = %v", b, out.Shape())
		}
		outs = append(outs, out)
	}
	if !outs[0].AllClose(outs[1], 1e-12) {
		t.Fatal("backends disagree on conv network forward")
	}
}

package nn

import (
	"fmt"
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// LSTM is a fused-gate LSTM layer for recurrent policies (the paper's
// Listing 1 builds a policy from "recurrent_policy.json"; IMPALA's network
// carries an LSTM core). It exposes:
//
//	call(x [b, T, F])            -> out [b, U]        // unrolled, zero init,
//	                                                  // last output (BPTT
//	                                                  // through all T steps)
//	step(x [b, F], h, c [b, U])  -> out, hNew, cNew   // explicit state
//
// The time length T must be statically known (declared via the input
// space), matching how RLgraph spaces carry explicit time ranks.
type LSTM struct {
	*component.Component

	units      int
	forgetBias float64
	seed       int64

	// Fused gate weights: order (i, g, f, o) along the last axis.
	Wx, Wh, B *vars.Variable
}

// NewLSTM returns an LSTM layer with the given state width.
func NewLSTM(name string, units int, seed int64) *LSTM {
	l := &LSTM{Component: component.New(name), units: units, forgetBias: 1, seed: seed}
	l.SetImpl(l)
	l.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return l.GraphFn(ctx, "unroll", 1, l.unrollFn, in...)
	})
	l.DefineAPI("step", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return l.GraphFn(ctx, "step", 3, l.stepFn, in...)
	})
	return l
}

// CreateVariables sizes the fused gate weights from the feature width of
// whichever API builds first ([b,T,F] for call, [b,F] for step).
func (l *LSTM) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	shape := inSpaces[0].Shape()
	var f int
	switch len(shape) {
	case 2: // [T, F] element shape from call
		f = shape[1]
	case 1: // [F] element shape from step
		f = shape[0]
	default:
		return fmt.Errorf("nn: LSTM %q wants [b,T,F] or [b,F] input, got element shape %v",
			l.Name(), shape)
	}
	rng := rand.New(rand.NewSource(l.seed))
	l.Wx = l.AddVariable(vars.New("Wx", tensor.GlorotUniform(rng, f, l.units, f, 4*l.units)))
	l.Wh = l.AddVariable(vars.New("Wh", tensor.GlorotUniform(rng, l.units, l.units, l.units, 4*l.units)))
	l.B = l.AddVariable(vars.New("b", tensor.New(4*l.units)))
	return nil
}

// cell applies one LSTM step to (x [b,F], h, c [b,U]).
func (l *LSTM) cell(ops backend.Ops, x, h, c backend.Ref) (hNew, cNew backend.Ref) {
	u := l.units
	z := ops.Add(ops.Add(ops.MatMul(x, ops.VarRead(l.Wx)), ops.MatMul(h, ops.VarRead(l.Wh))),
		ops.VarRead(l.B))
	i := ops.Sigmoid(ops.SliceCols(z, 0, u))
	g := ops.Tanh(ops.SliceCols(z, u, 2*u))
	f := ops.Sigmoid(ops.AddScalar(ops.SliceCols(z, 2*u, 3*u), l.forgetBias))
	o := ops.Sigmoid(ops.SliceCols(z, 3*u, 4*u))
	cNew = ops.Add(ops.Mul(f, c), ops.Mul(i, g))
	hNew = ops.Mul(o, ops.Tanh(cNew))
	return hNew, cNew
}

func (l *LSTM) stepFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	h, c := l.cell(ops, in[0], in[1], in[2])
	return []backend.Ref{h, h, c}
}

// unrollFn runs BPTT over the statically known time dimension with zero
// initial state, returning the last hidden output.
func (l *LSTM) unrollFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	shape := ops.ShapeOf(in[0])
	if len(shape) != 3 {
		panic(fmt.Sprintf("nn: LSTM %q call wants [b,T,F], got %v", l.Name(), shape))
	}
	T, F := shape[1], shape[2]
	if T < 0 || F < 0 {
		panic(fmt.Sprintf("nn: LSTM %q needs static time/feature dims, got %v", l.Name(), shape))
	}
	flat := ops.Reshape(in[0], -1, T*F)

	// Zero initial state with the runtime batch size: multiply the first
	// step by a zero matrix (cheap at these widths, backend-independent).
	x0 := ops.SliceCols(flat, 0, F)
	zeroProj := ops.Const(tensor.New(F, l.units))
	h := ops.MatMul(x0, zeroProj)
	c := ops.MatMul(x0, zeroProj)

	for t := 0; t < T; t++ {
		xt := ops.SliceCols(flat, t*F, (t+1)*F)
		h, c = l.cell(ops, xt, h, c)
	}
	return []backend.Ref{h}
}

// Units returns the state width.
func (l *LSTM) Units() int { return l.units }

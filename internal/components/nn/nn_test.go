package nn

import (
	"math"
	"math/rand"
	"testing"

	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func TestDenseForwardBothBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := tensor.RandNormal(rng, 0, 1, 3, 4)
	var outs []*tensor.Tensor
	for _, b := range exec.Backends() {
		d := NewDense("d", 5, "relu", 42)
		ct, err := exec.NewComponentTest(b, d.Component, exec.InputSpaces{
			"call": {spaces.NewFloatBox(4).WithBatchRank()},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ct.Test1("call", in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.SameShape(out.Shape(), []int{3, 5}) {
			t.Fatalf("shape = %v", out.Shape())
		}
		for _, v := range out.Data() {
			if v < 0 {
				t.Fatal("relu output negative")
			}
		}
		outs = append(outs, out)
	}
	// Same seed ⇒ identical weights ⇒ identical outputs across backends.
	if !outs[0].AllClose(outs[1], 1e-12) {
		t.Fatal("backends disagree on dense forward")
	}
}

func TestDenseCreatesVariablesFromInputSpace(t *testing.T) {
	d := NewDense("d", 8, "", 7)
	_, err := exec.NewComponentTest("static", d.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(3).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.W == nil || !tensor.SameShape(d.W.Val.Shape(), []int{3, 8}) {
		t.Fatalf("W shape = %v", d.W.Val.Shape())
	}
	if !tensor.SameShape(d.B.Val.Shape(), []int{8}) {
		t.Fatalf("B shape = %v", d.B.Val.Shape())
	}
}

func TestConv2DLayerShapes(t *testing.T) {
	c := NewConv2D("c", 16, 8, 4, "valid", "relu", 3)
	ct, err := exec.NewComponentTest("static", c.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(84, 84, 4).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	out, err := ct.Test1("call", tensor.RandNormal(rng, 0, 1, 2, 84, 84, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape(), []int{2, 20, 20, 16}) {
		t.Fatalf("shape = %v", out.Shape())
	}
}

func TestConvSamePaddingKeepsSpatialDims(t *testing.T) {
	c := NewConv2D("c", 4, 3, 1, "same", "", 5)
	ct, err := exec.NewComponentTest("define-by-run", c.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(10, 10, 2).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.New(1, 10, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape(), []int{1, 10, 10, 4}) {
		t.Fatalf("shape = %v", out.Shape())
	}
}

func TestNetworkFromSpecs(t *testing.T) {
	specs, err := ParseNetworkSpec([]byte(`[
		{"type": "dense", "units": 16, "activation": "tanh"},
		{"type": "dense", "units": 4}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	n := MustNetwork("net", specs, 9)
	if n.NumLayers() != 2 {
		t.Fatalf("layers = %d", n.NumLayers())
	}
	ct, err := exec.NewComponentTest("static", n.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(6).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.New(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape(), []int{5, 4}) {
		t.Fatalf("shape = %v", out.Shape())
	}
}

func TestNetworkUnknownLayerType(t *testing.T) {
	if _, err := NewNetwork("n", []LayerSpec{{Type: "lstm9000"}}, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestDuelingHeadDecomposition(t *testing.T) {
	// Q = V + A - mean(A) implies mean_a Q(s,a) = V(s).
	d := NewDuelingHead("duel", 8, 3, 11)
	ct, err := exec.NewComponentTest("static", d.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(5).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	in := tensor.RandNormal(rng, 0, 1, 4, 5)
	q, err := ct.Test1("call", in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(q.Shape(), []int{4, 3}) {
		t.Fatalf("shape = %v", q.Shape())
	}
	// Verify the advantage stream is centered: Q - rowmean(Q) must equal
	// A - mean(A), i.e. rowmean(Q) equals the value stream. We can't read
	// V directly here, but centering implies rowmean(Q) is independent of
	// any common advantage offset; sanity-check finiteness and spread.
	rm := tensor.MeanAxis(q, 1, false)
	for i := 0; i < 4; i++ {
		if math.IsNaN(rm.Data()[i]) {
			t.Fatal("NaN in dueling output")
		}
	}
}

func TestConvDuelingAtariArchitecture(t *testing.T) {
	// The standard 3-conv + dueling architecture from the paper's Fig. 5
	// workloads, on a downscaled 42x42 input for test speed.
	n := MustNetwork("atari", []LayerSpec{
		{Type: "conv2d", Filters: 8, Kernel: 8, Stride: 4, Activation: "relu"},
		{Type: "conv2d", Filters: 16, Kernel: 4, Stride: 2, Activation: "relu"},
		{Type: "conv2d", Filters: 16, Kernel: 3, Stride: 1, Activation: "relu"},
		{Type: "flatten"},
		{Type: "dueling", Units: 32, Actions: 6},
	}, 13)
	ct, err := exec.NewComponentTest("static", n.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(42, 42, 1).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.New(2, 42, 42, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape(), []int{2, 6}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	// Component graph includes conv layers, flatten, dueling + its four
	// dense streams: at least 9 components under the network.
	if n.Component.NumComponents() < 9 {
		t.Fatalf("components = %d", n.Component.NumComponents())
	}
}

func TestActivationComponent(t *testing.T) {
	a := NewActivation("act", "tanh")
	ct, err := exec.NewComponentTest("define-by-run", a.Component, exec.InputSpaces{
		"call": {spaces.NewFloatBox(3).WithBatchRank()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.Test1("call", tensor.FromSlice([]float64{-100, 0, 100}, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromSlice([]float64{-1, 0, 1}, 1, 3)
	if !out.AllClose(want, 1e-9) {
		t.Fatalf("got %v", out)
	}
}

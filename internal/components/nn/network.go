package nn

import (
	"encoding/json"
	"fmt"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
)

// LayerSpec declares one layer of a network in a declarative configuration
// (the JSON documents of the paper's agent API, §3.4).
type LayerSpec struct {
	// Type is "dense", "conv2d", "flatten", "activation", "dueling" or
	// "lstm".
	Type string `json:"type"`
	// Units is the output width for dense layers.
	Units int `json:"units,omitempty"`
	// Activation names the nonlinearity ("relu", "tanh", "sigmoid", "").
	Activation string `json:"activation,omitempty"`
	// Filters/Kernel/Stride/Padding configure conv2d layers.
	Filters int    `json:"filters,omitempty"`
	Kernel  int    `json:"kernel,omitempty"`
	Stride  int    `json:"stride,omitempty"`
	Padding string `json:"padding,omitempty"`
	// Actions is the action count for dueling heads.
	Actions int `json:"actions,omitempty"`
}

// NeuralNetwork stacks layer components and exposes a single "call" API that
// chains their API methods — the canonical example of component composition.
type NeuralNetwork struct {
	*component.Component
	layers []*component.Component
}

// caller is any layer component exposing "call".
func callLayer(ctx *component.Ctx, layer *component.Component, in []*component.Rec) []*component.Rec {
	return layer.Call(ctx, "call", in...)
}

// NewNetwork builds a network from layer specs. seed derives per-layer
// initialization seeds deterministically.
func NewNetwork(name string, specs []LayerSpec, seed int64) (*NeuralNetwork, error) {
	n := &NeuralNetwork{Component: component.New(name)}
	for i, sp := range specs {
		var c *component.Component
		lname := fmt.Sprintf("layer%d-%s", i, sp.Type)
		lseed := seed + int64(i)*7919
		switch sp.Type {
		case "dense":
			c = NewDense(lname, sp.Units, sp.Activation, lseed).Component
		case "conv2d":
			stride := sp.Stride
			if stride == 0 {
				stride = 1
			}
			c = NewConv2D(lname, sp.Filters, sp.Kernel, stride, sp.Padding, sp.Activation, lseed).Component
		case "flatten":
			c = NewFlatten(lname).Component
		case "activation":
			c = NewActivation(lname, sp.Activation).Component
		case "dueling":
			c = NewDuelingHead(lname, sp.Units, sp.Actions, lseed).Component
		case "lstm":
			c = NewLSTM(lname, sp.Units, lseed).Component
		default:
			return nil, fmt.Errorf("nn: unknown layer type %q", sp.Type)
		}
		n.layers = append(n.layers, c)
		n.AddSub(c)
	}
	n.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		out := in
		for _, l := range n.layers {
			out = callLayer(ctx, l, out)
		}
		return out
	})
	return n, nil
}

// MustNetwork is NewNetwork, panicking on config errors.
func MustNetwork(name string, specs []LayerSpec, seed int64) *NeuralNetwork {
	n, err := NewNetwork(name, specs, seed)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseNetworkSpec decodes a JSON array of layer specs.
func ParseNetworkSpec(data []byte) ([]LayerSpec, error) {
	var specs []LayerSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("nn: parsing network spec: %w", err)
	}
	return specs, nil
}

// NumLayers returns the number of stacked layer components.
func (n *NeuralNetwork) NumLayers() int { return len(n.layers) }

// DuelingHead maps features to Q-values via separate value and advantage
// streams: Q = V + A - mean(A) (Wang et al.; the architecture used in the
// paper's Fig. 5 workloads).
type DuelingHead struct {
	*component.Component
	valueHidden *Dense
	valueOut    *Dense
	advHidden   *Dense
	advOut      *Dense
}

// NewDuelingHead returns a dueling head with `hidden` units per stream and
// `actions` outputs.
func NewDuelingHead(name string, hidden, actions int, seed int64) *DuelingHead {
	if hidden <= 0 {
		hidden = 64
	}
	d := &DuelingHead{Component: component.New(name)}
	d.valueHidden = NewDense("value-hidden", hidden, "relu", seed+1)
	d.valueOut = NewDense("value-out", 1, "", seed+2)
	d.advHidden = NewDense("adv-hidden", hidden, "relu", seed+3)
	d.advOut = NewDense("adv-out", actions, "", seed+4)
	d.AddSub(d.valueHidden.Component)
	d.AddSub(d.valueOut.Component)
	d.AddSub(d.advHidden.Component)
	d.AddSub(d.advOut.Component)
	d.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		v := d.valueOut.Call(ctx, "call", d.valueHidden.Call(ctx, "call", in...)...)
		a := d.advOut.Call(ctx, "call", d.advHidden.Call(ctx, "call", in...)...)
		return d.GraphFn(ctx, "combine", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			val, adv := refs[0], refs[1]
			centered := ops.Sub(adv, ops.MeanAxis(adv, -1, true))
			return []backend.Ref{ops.Add(val, centered)}
		}, v[0], a[0])
	})
	return d
}

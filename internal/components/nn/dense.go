// Package nn provides neural-network components: layers with strict API
// boundaries that the graph builder assembles into differentiable dataflow
// on either backend. Layers create their weight variables at build time from
// inferred input spaces (the input-completeness barrier), so users never
// declare weight shapes by hand.
package nn

import (
	"fmt"
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// applyActivation appends the named activation to a ref.
func applyActivation(ops backend.Ops, x backend.Ref, act string) backend.Ref {
	switch act {
	case "", "linear":
		return x
	case "relu":
		return ops.Relu(x)
	case "tanh":
		return ops.Tanh(x)
	case "sigmoid":
		return ops.Sigmoid(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", act))
	}
}

// Dense is a fully connected layer: y = act(xW + b). Its weight shapes are
// inferred from the input space during the build.
type Dense struct {
	*component.Component

	units      int
	activation string
	seed       int64

	// W and B are created at build time.
	W, B *vars.Variable
}

// NewDense returns a dense layer producing `units` features.
func NewDense(name string, units int, activation string, seed int64) *Dense {
	d := &Dense{Component: component.New(name), units: units, activation: activation, seed: seed}
	d.SetImpl(d)
	d.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return d.GraphFn(ctx, "forward", 1, d.forward, in...)
	})
	return d
}

func (d *Dense) forward(ops backend.Ops, in []backend.Ref) []backend.Ref {
	y := ops.Add(ops.MatMul(in[0], ops.VarRead(d.W)), ops.VarRead(d.B))
	return []backend.Ref{applyActivation(ops, y, d.activation)}
}

// CreateVariables builds W [fanIn, units] and B [units] from the input space.
func (d *Dense) CreateVariables(_ backend.Ops, inSpaces []spaces.Space) error {
	shape := inSpaces[0].Shape()
	if len(shape) != 1 {
		return fmt.Errorf("nn: Dense %q wants rank-1 feature input, got element shape %v", d.Name(), shape)
	}
	fanIn := shape[0]
	rng := rand.New(rand.NewSource(d.seed))
	d.W = d.AddVariable(vars.New("W", tensor.GlorotUniform(rng, fanIn, d.units, fanIn, d.units)))
	d.B = d.AddVariable(vars.New("b", tensor.New(d.units)))
	return nil
}

// Flatten reshapes [b, d1, d2, ...] to [b, d1*d2*...]. It owns no variables
// but is a first-class component so it can be built and tested in isolation.
type Flatten struct {
	*component.Component
}

// NewFlatten returns a flatten component.
func NewFlatten(name string) *Flatten {
	f := &Flatten{Component: component.New(name)}
	f.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return f.GraphFn(ctx, "flatten", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			return []backend.Ref{ops.FlattenBatch(refs[0])}
		}, in...)
	})
	return f
}

// Activation applies a named nonlinearity as a standalone component.
type Activation struct {
	*component.Component
	kind string
}

// NewActivation returns an activation component of the given kind.
func NewActivation(name, kind string) *Activation {
	a := &Activation{Component: component.New(name), kind: kind}
	a.DefineAPI("call", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return a.GraphFn(ctx, "activate", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			return []backend.Ref{applyActivation(ops, refs[0], a.kind)}
		}, in...)
	})
	return a
}

// Package optimizers provides gradient-descent optimizer components. An
// optimizer's step API takes a scalar loss record, obtains gradients of the
// trainable variables it was wired to (paper Fig. 3: optimizer.step(loss,
// policy.variables())), optionally clips them by global norm, and emits
// backend-appropriate update operations: in-graph assignments for the static
// backend, immediate in-place updates for define-by-run.
package optimizers

import (
	"fmt"
	"math"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// VarsProvider supplies the variables an optimizer updates. It is resolved
// at build time so optimizers can be wired before the policy's variables
// exist.
type VarsProvider func() []*vars.Variable

// Config selects and parameterizes an optimizer.
type Config struct {
	// Type is "sgd", "momentum", "rmsprop" or "adam".
	Type string `json:"type"`
	// LearningRate is the step size.
	LearningRate float64 `json:"learning_rate"`
	// Momentum applies to "momentum" (and as RMSProp's decay if set).
	Momentum float64 `json:"momentum,omitempty"`
	// Beta1/Beta2 are Adam's moment decays.
	Beta1 float64 `json:"beta1,omitempty"`
	Beta2 float64 `json:"beta2,omitempty"`
	// Decay is RMSProp's moving-average decay.
	Decay float64 `json:"decay,omitempty"`
	// Epsilon stabilizes divisions.
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxGradNorm enables global-norm gradient clipping when > 0.
	MaxGradNorm float64 `json:"max_grad_norm,omitempty"`
}

// Optimizer is the shared component: concrete rules differ only in their
// per-variable update emission.
type Optimizer struct {
	*component.Component

	cfg      Config
	provider VarsProvider

	// slot state, created lazily at build time per optimized variable.
	slots map[*vars.Variable]map[string]*vars.Variable
	step  int // host-side step counter (Adam bias correction)
}

// New returns an optimizer component from a config.
func New(name string, cfg Config, provider VarsProvider) (*Optimizer, error) {
	switch cfg.Type {
	case "sgd", "momentum", "rmsprop", "adam":
	default:
		return nil, fmt.Errorf("optimizers: unknown type %q", cfg.Type)
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("optimizers: learning rate must be positive, got %g", cfg.LearningRate)
	}
	o := &Optimizer{
		Component: component.New(name),
		cfg:       withDefaults(cfg),
		provider:  provider,
		slots:     make(map[*vars.Variable]map[string]*vars.Variable),
	}
	o.DefineAPI("step", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return o.GraphFn(ctx, "step", 1, o.stepFn, in...)
	})
	return o, nil
}

// Must is New, panicking on config errors.
func Must(name string, cfg Config, provider VarsProvider) *Optimizer {
	o, err := New(name, cfg, provider)
	if err != nil {
		panic(err)
	}
	return o
}

func withDefaults(cfg Config) Config {
	if cfg.Beta1 == 0 {
		cfg.Beta1 = 0.9
	}
	if cfg.Beta2 == 0 {
		cfg.Beta2 = 0.999
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.99
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-8
	}
	if cfg.Momentum == 0 && cfg.Type == "momentum" {
		cfg.Momentum = 0.9
	}
	return cfg
}

// stepFn computes gradients of the loss wrt the wired variables, clips, and
// emits updates. The returned ref is the global gradient norm (before
// clipping); evaluating it forces all updates.
func (o *Optimizer) stepFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	loss := in[0]
	vsl := o.provider()
	if len(vsl) == 0 {
		panic(fmt.Sprintf("optimizers: %q has no variables to optimize", o.Name()))
	}
	grads := ops.Gradients(loss, vsl)

	// Global norm: sqrt(Σ_v Σ g²).
	var sq backend.Ref
	for _, g := range grads {
		s := ops.Sum(ops.Square(g))
		if sq == nil {
			sq = s
		} else {
			sq = ops.Add(sq, s)
		}
	}
	norm := ops.Sqrt(sq)

	if o.cfg.MaxGradNorm > 0 {
		// scale = min(1, maxNorm / (norm + eps)).
		scale := ops.Minimum(ops.ConstScalar(1),
			ops.Div(ops.ConstScalar(o.cfg.MaxGradNorm), ops.AddScalar(norm, 1e-12)))
		for i, g := range grads {
			grads[i] = ops.Mul(g, scale)
		}
	}

	updates := make([]backend.Ref, 0, len(vsl)+1)
	for i, v := range vsl {
		updates = append(updates, o.applyUpdate(ops, v, grads[i]))
	}
	// Advance the shared step counter once per step (host side).
	updates = append(updates, ops.Stateful("OptStep", []int{}, func([]*tensor.Tensor) (*tensor.Tensor, error) {
		o.step++
		return tensor.Scalar(float64(o.step)), nil
	}))
	group := ops.Group(updates...)

	// Return the norm, forcing updates via the group as a data dependency:
	// norm + 0*group keeps a single fetchable output on both backends.
	return []backend.Ref{ops.Add(norm, ops.Mul(group, ops.ConstScalar(0)))}
}

// slot returns (creating on first use) named optimizer state shaped like v.
func (o *Optimizer) slot(v *vars.Variable, name string) *vars.Variable {
	m := o.slots[v]
	if m == nil {
		m = make(map[string]*vars.Variable)
		o.slots[v] = m
	}
	s := m[name]
	if s == nil {
		s = vars.NewNonTrainable(o.Scope()+"/"+name+"/"+v.Name, tensor.New(v.Val.Shape()...))
		m[name] = s
	}
	return s
}

// applyUpdate emits the per-variable update for the configured rule.
func (o *Optimizer) applyUpdate(ops backend.Ops, v *vars.Variable, g backend.Ref) backend.Ref {
	lr := o.cfg.LearningRate
	switch o.cfg.Type {
	case "sgd":
		return ops.AddToVar(v, g, -lr)

	case "momentum":
		mv := o.slot(v, "momentum")
		// m = μm + g; v -= lr*m.
		mNew := ops.Add(ops.Scale(ops.VarRead(mv), o.cfg.Momentum), g)
		a1 := ops.AssignVar(mv, mNew)
		return ops.Group(a1, ops.AddToVar(v, mNew, -lr))

	case "rmsprop":
		sv := o.slot(v, "rms")
		// s = ρs + (1-ρ)g²; v -= lr * g/sqrt(s+ε).
		sNew := ops.Add(ops.Scale(ops.VarRead(sv), o.cfg.Decay),
			ops.Scale(ops.Square(g), 1-o.cfg.Decay))
		a1 := ops.AssignVar(sv, sNew)
		upd := ops.Div(g, ops.Sqrt(ops.AddScalar(sNew, o.cfg.Epsilon)))
		return ops.Group(a1, ops.AddToVar(v, upd, -lr))

	case "adam":
		mv := o.slot(v, "m")
		vv := o.slot(v, "v")
		b1, b2 := o.cfg.Beta1, o.cfg.Beta2
		mNew := ops.Add(ops.Scale(ops.VarRead(mv), b1), ops.Scale(g, 1-b1))
		vNew := ops.Add(ops.Scale(ops.VarRead(vv), b2), ops.Scale(ops.Square(g), 1-b2))
		a1 := ops.AssignVar(mv, mNew)
		a2 := ops.AssignVar(vv, vNew)
		// Bias correction uses the host step counter read at run time. The
		// scalar is cached per closure and mutated in place between steps:
		// stateful steps run serialized, its consumers only read during the
		// same run, and a non-value-semantics producer is never recycled, so
		// reusing the tensor is safe and keeps the update loop allocation-free.
		var corrT *tensor.Tensor
		corr := ops.Stateful("AdamCorr", []int{}, func([]*tensor.Tensor) (*tensor.Tensor, error) {
			t := float64(o.step + 1)
			c := math.Sqrt(1-math.Pow(b2, t)) / (1 - math.Pow(b1, t))
			if corrT == nil {
				corrT = tensor.Scalar(c)
			} else {
				corrT.Data()[0] = c
			}
			return corrT, nil
		})
		upd := ops.Div(ops.Mul(mNew, corr), ops.AddScalar(ops.Sqrt(vNew), o.cfg.Epsilon))
		return ops.Group(a1, a2, ops.AddToVar(v, upd, -lr))
	}
	panic("unreachable")
}

// Step returns the number of applied optimizer steps.
func (o *Optimizer) Step() int { return o.step }

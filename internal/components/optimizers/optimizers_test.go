package optimizers

import (
	"math"
	"testing"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// quadModel is a component with one weight vector and a quadratic loss
// |w - target|², minimized at w == target.
type quadModel struct {
	*component.Component
	w      *vars.Variable
	target []float64
	opt    *Optimizer
}

func newQuadModel(cfg Config, target []float64) *quadModel {
	m := &quadModel{Component: component.New("quad"), target: target}
	m.SetImpl(m)
	m.opt = Must("opt", cfg, func() []*vars.Variable { return []*vars.Variable{m.w} })
	m.AddSub(m.opt.Component)
	m.DefineAPI("update", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		loss := m.GraphFn(ctx, "loss", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			w := ops.VarRead(m.w)
			tgt := ops.Const(tensor.FromSlice(append([]float64(nil), m.target...), len(m.target)))
			return []backend.Ref{ops.Sum(ops.Square(ops.Sub(w, tgt)))}
		})
		norm := m.opt.Call(ctx, "step", loss...)
		return append(loss, norm...)
	})
	return m
}

func (m *quadModel) CreateVariables(_ backend.Ops, _ []spaces.Space) error {
	m.w = m.AddVariable(vars.New("w", tensor.New(len(m.target))))
	return nil
}

// converges reports whether repeated updates drive w to target.
func converges(t *testing.T, backendName string, cfg Config, steps int, tol float64) float64 {
	t.Helper()
	target := []float64{1.5, -2.0, 0.5}
	m := newQuadModel(cfg, target)
	ct, err := exec.NewComponentTest(backendName, m.Component, exec.InputSpaces{
		"update": {},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for i := 0; i < steps; i++ {
		outs, err := ct.Test("update")
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = outs[0].Item()
	}
	for i, v := range m.w.Val.Data() {
		if math.Abs(v-target[i]) > tol {
			t.Fatalf("%s/%s: w[%d] = %g, want %g (loss %g)",
				backendName, cfg.Type, i, v, target[i], lastLoss)
		}
	}
	return lastLoss
}

func TestSGDConvergesBothBackends(t *testing.T) {
	for _, b := range exec.Backends() {
		converges(t, b, Config{Type: "sgd", LearningRate: 0.1}, 200, 1e-3)
	}
}

func TestMomentumConverges(t *testing.T) {
	converges(t, "static", Config{Type: "momentum", LearningRate: 0.02, Momentum: 0.9}, 300, 1e-3)
}

func TestRMSPropConverges(t *testing.T) {
	converges(t, "static", Config{Type: "rmsprop", LearningRate: 0.05}, 400, 1e-2)
	converges(t, "define-by-run", Config{Type: "rmsprop", LearningRate: 0.05}, 400, 1e-2)
}

func TestAdamConverges(t *testing.T) {
	converges(t, "static", Config{Type: "adam", LearningRate: 0.1}, 400, 1e-2)
	converges(t, "define-by-run", Config{Type: "adam", LearningRate: 0.1}, 400, 1e-2)
}

func TestBackendsProduceIdenticalTrajectories(t *testing.T) {
	// Deterministic quadratic: both backends must produce identical weights
	// after the same number of Adam steps.
	target := []float64{1, 2, 3}
	weights := make([][]float64, 0, 2)
	for _, b := range exec.Backends() {
		m := newQuadModel(Config{Type: "adam", LearningRate: 0.05}, target)
		ct, err := exec.NewComponentTest(b, m.Component, exec.InputSpaces{"update": {}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if _, err := ct.Test("update"); err != nil {
				t.Fatal(err)
			}
		}
		weights = append(weights, append([]float64(nil), m.w.Val.Data()...))
	}
	for i := range weights[0] {
		if math.Abs(weights[0][i]-weights[1][i]) > 1e-9 {
			t.Fatalf("trajectory diverges at w[%d]: %g vs %g", i, weights[0][i], weights[1][i])
		}
	}
}

func TestGradientClippingBoundsNorm(t *testing.T) {
	// With a faraway target, the unclipped first-step gradient norm is
	// large; clipping must keep the applied update ≤ maxNorm * lr.
	target := []float64{100, 100, 100}
	m := newQuadModel(Config{Type: "sgd", LearningRate: 1, MaxGradNorm: 1}, target)
	ct, err := exec.NewComponentTest("static", m.Component, exec.InputSpaces{"update": {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Test("update"); err != nil {
		t.Fatal(err)
	}
	norm := 0.0
	for _, v := range m.w.Val.Data() {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > 1.0+1e-6 {
		t.Fatalf("clipped update moved w by %g > 1", norm)
	}
}

func TestStepCounterAdvances(t *testing.T) {
	m := newQuadModel(Config{Type: "adam", LearningRate: 0.01}, []float64{1, 1, 1})
	ct, err := exec.NewComponentTest("define-by-run", m.Component, exec.InputSpaces{"update": {}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ct.Test("update"); err != nil {
			t.Fatal(err)
		}
	}
	if m.opt.Step() != 5 {
		t.Fatalf("steps = %d", m.opt.Step())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New("o", Config{Type: "adagrad", LearningRate: 0.1}, nil); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := New("o", Config{Type: "sgd"}, nil); err == nil {
		t.Fatal("zero learning rate accepted")
	}
}

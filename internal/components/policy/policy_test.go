package policy

import (
	"math/rand"
	"testing"

	"rlgraph/internal/components/nn"
	"rlgraph/internal/exec"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
)

func testPolicy(seed int64, eps *EpsilonGreedy) *Policy {
	net := nn.MustNetwork("net", []nn.LayerSpec{
		{Type: "dense", Units: 16, Activation: "relu"},
		{Type: "dense", Units: 4},
	}, seed)
	return New("policy", net.Component, spaces.NewIntBox(4), eps)
}

func policySpaces() exec.InputSpaces {
	st := spaces.NewFloatBox(6).WithBatchRank()
	return exec.InputSpaces{
		"q_values":   {st},
		"act_greedy": {st},
		"act":        {st},
	}
}

func TestPolicyQValuesShape(t *testing.T) {
	for _, b := range exec.Backends() {
		p := testPolicy(1, nil)
		ct, err := exec.NewComponentTest(b, p.Component, policySpaces())
		if err != nil {
			t.Fatal(err)
		}
		q, err := ct.Test1("q_values", tensor.New(3, 6))
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.SameShape(q.Shape(), []int{3, 4}) {
			t.Fatalf("%s: q shape = %v", b, q.Shape())
		}
	}
}

func TestGreedyActionsAreArgmax(t *testing.T) {
	p := testPolicy(2, nil)
	ct, err := exec.NewComponentTest("static", p.Component, policySpaces())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	st := tensor.RandNormal(rng, 0, 1, 5, 6)
	q, err := ct.Test1("q_values", st)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ct.Test1("act_greedy", st)
	if err != nil {
		t.Fatal(err)
	}
	am := tensor.ArgMaxAxis(q, -1)
	if !a.Equal(am) {
		t.Fatalf("greedy actions %v != argmax %v", a, am)
	}
}

func TestEpsilonDecaySchedule(t *testing.T) {
	e := NewEpsilonGreedy("eps", 1.0, 0.1, 100, 7)
	if e.Epsilon() != 1.0 {
		t.Fatalf("initial eps = %g", e.Epsilon())
	}
	e.SetTimestep(50)
	if got := e.Epsilon(); got < 0.54 || got > 0.56 {
		t.Fatalf("mid eps = %g", got)
	}
	e.SetTimestep(1000)
	if e.Epsilon() != 0.1 {
		t.Fatalf("final eps = %g", e.Epsilon())
	}
}

func TestExplorationFullEpsilonIsUniformish(t *testing.T) {
	// With ε=1 every action is random: all four actions must occur.
	e := NewEpsilonGreedy("eps", 1.0, 1.0, 1, 11)
	p := testPolicy(4, e)
	ct, err := exec.NewComponentTest("define-by-run", p.Component, policySpaces())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 50; i++ {
		a, err := ct.Test1("act", tensor.New(4, 6))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range a.Data() {
			counts[int(v)]++
		}
	}
	if len(counts) != 4 {
		t.Fatalf("action coverage = %v", counts)
	}
}

func TestExplorationZeroEpsilonIsGreedy(t *testing.T) {
	e := NewEpsilonGreedy("eps", 0, 0, 1, 13)
	p := testPolicy(5, e)
	ct, err := exec.NewComponentTest("static", p.Component, policySpaces())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	st := tensor.RandNormal(rng, 0, 1, 8, 6)
	a, err := ct.Test1("act", st)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ct.Test1("act_greedy", st)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(g) {
		t.Fatal("ε=0 actions differ from greedy")
	}
}

func TestPolicyVariablesExposed(t *testing.T) {
	p := testPolicy(8, nil)
	_, err := exec.NewComponentTest("static", p.Component, policySpaces())
	if err != nil {
		t.Fatal(err)
	}
	// Two dense layers → 4 trainable variables.
	if got := len(p.TrainableVariables()); got != 4 {
		t.Fatalf("trainables = %d", got)
	}
}

func TestActAPIsAreNoGrad(t *testing.T) {
	p := testPolicy(9, NewEpsilonGreedy("eps", 0.5, 0.5, 1, 1))
	if !p.LookupAPI("act").NoGrad || !p.LookupAPI("act_greedy").NoGrad {
		t.Fatal("act APIs must be no-grad for the define-by-run fast path")
	}
	if p.LookupAPI("q_values").NoGrad {
		t.Fatal("q_values must allow gradients (used by the update path)")
	}
}

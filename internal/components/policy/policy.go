// Package policy provides the Policy component — a network plus an action
// adapter plus exploration — the sub-graph built in the paper's Listing 1.
package policy

import (
	"math/rand"

	"rlgraph/internal/backend"
	"rlgraph/internal/component"
	"rlgraph/internal/spaces"
	"rlgraph/internal/tensor"
	"rlgraph/internal/vars"
)

// Policy wires a network component (exposing "call" and producing Q-values
// or logits per action) with greedy and exploratory action selection.
//
// API methods:
//
//	q_values(state)   -> q [b, actions]
//	act_greedy(state) -> action [b]
//	act(state)        -> action [b]   // epsilon-greedy with decay
type Policy struct {
	*component.Component

	network     *component.Component
	exploration *EpsilonGreedy
	numActions  int
}

// New returns a policy over the given network for a discrete action space.
// The network's "call" API must produce one value per action (append a
// dense or dueling head sized to the action space when composing it).
// exploration may be nil for a purely greedy policy.
func New(name string, network *component.Component, actionSpace *spaces.IntBox, exploration *EpsilonGreedy) *Policy {
	p := &Policy{
		Component:   component.New(name),
		network:     network,
		exploration: exploration,
		numActions:  actionSpace.N,
	}
	p.AddSub(network)
	if exploration != nil {
		p.AddSub(exploration.Component)
	}

	p.DefineAPI("q_values", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return p.network.Call(ctx, "call", in...)
	})
	p.DefineAPI("act_greedy", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		q := p.Call(ctx, "q_values", in...)
		return p.GraphFn(ctx, "argmax", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
			return []backend.Ref{ops.ArgMaxAxis(refs[0], -1)}
		}, q...)
	}).NoGrad = true
	p.DefineAPI("act", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		q := p.Call(ctx, "q_values", in...)
		if p.exploration == nil {
			return p.GraphFn(ctx, "argmax_noexp", 1, func(ops backend.Ops, refs []backend.Ref) []backend.Ref {
				return []backend.Ref{ops.ArgMaxAxis(refs[0], -1)}
			}, q...)
		}
		return p.exploration.Call(ctx, "select", q...)
	}).NoGrad = true
	return p
}

// NumActions returns the discrete action count.
func (p *Policy) NumActions() int { return p.numActions }

// Network returns the wrapped network component.
func (p *Policy) Network() *component.Component { return p.network }

// TrainableVariables lists the policy's trainable variables (for optimizer
// wiring and weight sync).
func (p *Policy) TrainableVariables() []*vars.Variable {
	return p.Component.TrainableVariables()
}

// EpsilonGreedy selects argmax actions with probability 1-ε and uniform
// random actions otherwise, with ε annealed linearly over decaySteps
// timesteps — the standard DQN exploration heuristic, as a first-class,
// individually testable component.
type EpsilonGreedy struct {
	*component.Component

	initial, final float64
	decaySteps     int
	rng            *rand.Rand

	timestep int
}

// NewEpsilonGreedy returns an epsilon-greedy exploration component.
func NewEpsilonGreedy(name string, initial, final float64, decaySteps int, seed int64) *EpsilonGreedy {
	e := &EpsilonGreedy{
		Component: component.New(name),
		initial:   initial, final: final, decaySteps: decaySteps,
		rng: rand.New(rand.NewSource(seed)),
	}
	e.DefineAPI("select", func(ctx *component.Ctx, in []*component.Rec) []*component.Rec {
		return e.GraphFn(ctx, "select", 1, e.selectFn, in...)
	}).NoGrad = true
	return e
}

// Epsilon returns the current annealed epsilon.
func (e *EpsilonGreedy) Epsilon() float64 {
	if e.timestep >= e.decaySteps {
		return e.final
	}
	frac := float64(e.timestep) / float64(e.decaySteps)
	return e.initial + (e.final-e.initial)*frac
}

// SetTimestep overrides the anneal position (for tests and weight-synced
// workers with worker-specific epsilons).
func (e *EpsilonGreedy) SetTimestep(t int) { e.timestep = t }

func (e *EpsilonGreedy) selectFn(ops backend.Ops, in []backend.Ref) []backend.Ref {
	out := ops.Stateful("EpsGreedy", []int{-1}, func(ts []*tensor.Tensor) (*tensor.Tensor, error) {
		q := ts[0]
		batch := q.Dim(0)
		n := q.Dim(q.Rank() - 1)
		eps := e.Epsilon()
		actions := tensor.New(batch)
		am := tensor.ArgMaxAxis(q, -1)
		for i := 0; i < batch; i++ {
			if e.rng.Float64() < eps {
				actions.Data()[i] = float64(e.rng.Intn(n))
			} else {
				actions.Data()[i] = am.Data()[i]
			}
			e.timestep++
		}
		return actions, nil
	}, in...)
	return []backend.Ref{out}
}
